(* Tests for plaid_arch + plaid_mapping: architecture invariants, MRRG
   occupancy rules, scheduling, routing, and end-to-end mapping with both
   baseline mappers on the 4x4 spatio-temporal mesh. *)

open Plaid_ir
open Plaid_mapping

let check = Alcotest.check

let st4 = lazy (Plaid_arch.Mesh.build Plaid_arch.Mesh.spatio_temporal_4x4 ~name:"st4x4")

(* ------------------------------------------------------------------ arch *)

let test_mesh_counts () =
  let arch = Lazy.force st4 in
  check Alcotest.int "16 FUs" 16 (Array.length arch.Plaid_arch.Arch.fus);
  check Alcotest.int "4 memory FUs" 4 (Array.length arch.Plaid_arch.Arch.mem_fus)

let test_mesh_capacity () =
  let cap = Plaid_arch.Arch.capacity (Lazy.force st4) in
  check Alcotest.int "total" 16 cap.Analysis.total_slots;
  check Alcotest.int "memory" 4 cap.Analysis.memory_slots

let test_fu_supports () =
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mem_fu = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let alu_fu = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:3 in
  check Alcotest.bool "alsu loads" true (Plaid_arch.Arch.fu_supports arch mem_fu Op.Load);
  check Alcotest.bool "alu no loads" false (Plaid_arch.Arch.fu_supports arch alu_fu Op.Load);
  check Alcotest.bool "alu adds" true (Plaid_arch.Arch.fu_supports arch alu_fu Op.Add);
  check Alcotest.bool "port is not fu" false (Plaid_arch.Arch.fu_supports arch (mem_fu + 1) Op.Add)

let test_config_bits_positive () =
  let arch = Lazy.force st4 in
  let c = arch.Plaid_arch.Arch.config in
  check Alcotest.bool "compute bits" true (c.compute_bits = 16 * 12);
  check Alcotest.bool "comm bits substantial" true (c.comm_bits > c.compute_bits)

let test_combinational_loop_rejected () =
  let cfg = { Plaid_arch.Arch.compute_bits = 0; comm_bits = 0; entries = 4; clock_gated = false } in
  let b = Plaid_arch.Arch.builder ~name:"loopy" ~config:cfg () in
  let p1 = Plaid_arch.Arch.add_resource b ~name:"p1" ~kind:Plaid_arch.Arch.Port ~tile:(0, 0) ~area_class:"router_port" in
  let p2 = Plaid_arch.Arch.add_resource b ~name:"p2" ~kind:Plaid_arch.Arch.Port ~tile:(0, 0) ~area_class:"router_port" in
  Plaid_arch.Arch.add_link b ~src:p1 ~dst:p2 ~latency:0;
  Plaid_arch.Arch.add_link b ~src:p2 ~dst:p1 ~latency:0;
  match Plaid_arch.Arch.freeze b with
  | _ -> Alcotest.fail "expected combinational loop rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ mrrg *)

let test_mrrg_fu_exclusive () =
  let arch = Lazy.force st4 in
  let mrrg = Mrrg.create arch ~ii:2 in
  let fu = arch.Plaid_arch.Arch.fus.(0) in
  Mrrg.place_node mrrg ~node:0 ~fu ~slot:0;
  check Alcotest.bool "slot 0 busy" false (Mrrg.fu_free mrrg ~fu ~slot:0);
  check Alcotest.bool "slot 1 free" true (Mrrg.fu_free mrrg ~fu ~slot:1);
  (match Mrrg.place_node mrrg ~node:1 ~fu ~slot:0 with
  | _ -> Alcotest.fail "expected exclusivity"
  | exception Invalid_argument _ -> ());
  Mrrg.unplace_node mrrg ~node:0 ~fu ~slot:0;
  check Alcotest.bool "freed" true (Mrrg.fu_free mrrg ~fu ~slot:0)

let test_mrrg_signal_sharing () =
  let arch = Lazy.force st4 in
  let mrrg = Mrrg.create arch ~ii:2 in
  let res = 1 (* some port *) in
  let s1 = { Mrrg.s_node = 5; s_elapsed = 1 } in
  let s2 = { Mrrg.s_node = 6; s_elapsed = 1 } in
  check Alcotest.bool "free" true (Mrrg.can_use mrrg ~res ~slot:0 s1);
  Mrrg.occupy mrrg ~res ~slot:0 s1;
  check Alcotest.bool "same signal shares" true (Mrrg.can_use mrrg ~res ~slot:0 s1);
  check Alcotest.bool "other signal blocked" false (Mrrg.can_use mrrg ~res ~slot:0 s2);
  Mrrg.occupy mrrg ~res ~slot:0 s1;
  Mrrg.release mrrg ~res ~slot:0 s1;
  check Alcotest.bool "still held (refcount)" false (Mrrg.can_use mrrg ~res ~slot:0 s2);
  Mrrg.release mrrg ~res ~slot:0 s1;
  check Alcotest.bool "released" true (Mrrg.can_use mrrg ~res ~slot:0 s2)

let test_mrrg_overuse () =
  let arch = Lazy.force st4 in
  let mrrg = Mrrg.create arch ~ii:1 in
  let s1 = { Mrrg.s_node = 1; s_elapsed = 1 } in
  let s2 = { Mrrg.s_node = 2; s_elapsed = 1 } in
  check Alcotest.int "no overuse" 0 (Mrrg.overuse mrrg);
  Mrrg.occupy mrrg ~res:1 ~slot:0 s1;
  Mrrg.occupy mrrg ~res:1 ~slot:0 s2;
  check Alcotest.int "one violation" 1 (Mrrg.overuse mrrg);
  check Alcotest.int "presence" 2 (Mrrg.presence mrrg ~res:1 ~slot:0)

(* -------------------------------------------------------------- schedule *)

let saxpy_dfg () =
  Lower.lower
    {
      Kernel.name = "saxpy";
      trip = 16;
      body =
        [
          Kernel.Let ("t", Kernel.Binop (Op.Mul, Kernel.Param "a", Kernel.Load ("x", Kernel.idx 1)));
          Kernel.Store
            ("y", Kernel.idx 1, Kernel.Binop (Op.Add, Kernel.Temp "t", Kernel.Load ("y", Kernel.idx 1)));
        ];
      carries = [];
    }

let sumsq_dfg () =
  Lower.lower
    {
      Kernel.name = "sumsq";
      trip = 16;
      body =
        [
          Kernel.Let
            ("sq", Kernel.Binop (Op.Mul, Kernel.Load ("x", Kernel.idx 1), Kernel.Load ("x", Kernel.idx 1)));
          Kernel.Set_carry ("s", Kernel.Binop (Op.Add, Kernel.Carry "s", Kernel.Temp "sq"));
          Kernel.Store ("out", Kernel.fixed 0, Kernel.Carry "s");
        ];
      carries = [ ("s", 0) ];
    }

let test_schedule_satisfies_edges () =
  let g = saxpy_dfg () in
  let cap = Plaid_arch.Arch.capacity (Lazy.force st4) in
  List.iter
    (fun ii ->
      match Schedule.compute g ~ii ~cap with
      | None -> Alcotest.failf "no schedule at II=%d" ii
      | Some times ->
        Array.iter
          (fun (e : Dfg.edge) ->
            if times.(e.dst) < times.(e.src) + 1 - (e.dist * ii) then
              Alcotest.fail "edge constraint violated")
          g.Dfg.edges)
    [ 1; 2; 3 ]

let test_schedule_pressure () =
  (* 6 loads at II=2 with 4 memory slots: must spread across slots *)
  let b = Dfg.builder "loads" in
  for i = 0 to 5 do
    ignore (Dfg.add_node b ~access:{ array = "a"; offset = i; stride = 0 } Op.Load)
  done;
  let g = Dfg.finish b in
  let cap = { Analysis.total_slots = 16; memory_slots = 4 } in
  match Schedule.compute g ~ii:2 ~cap with
  | None -> Alcotest.fail "expected schedule"
  | Some times ->
    let per_slot = Array.make 2 0 in
    Array.iter (fun t -> per_slot.(t mod 2) <- (per_slot.(t mod 2) + 1)) times;
    check Alcotest.bool "within capacity" true (per_slot.(0) <= 4 && per_slot.(1) <= 4)

let test_slack_bounds () =
  let g = saxpy_dfg () in
  let cap = Plaid_arch.Arch.capacity (Lazy.force st4) in
  match Schedule.compute g ~ii:2 ~cap with
  | None -> Alcotest.fail "no schedule"
  | Some times ->
    for v = 0 to Dfg.n_nodes g - 1 do
      let lo, hi = Schedule.slack g ~times ~ii:2 ~node:v in
      if not (lo <= times.(v) && times.(v) <= hi) then
        Alcotest.failf "current time outside its own slack [%d,%d] for node %d" lo hi v
    done

(* ----------------------------------------------------------------- route *)

let test_route_adjacent () =
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:2 in
  let src = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let dst = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:1 in
  match Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:0 ~dst_fu:dst ~length:1 ~mode:Route.Hard with
  | None -> Alcotest.fail "no route to neighbour"
  | Some (path, _) ->
    (* outreg (elapsed 1) then neighbour inport (elapsed 1) *)
    check Alcotest.int "two wire steps" 2 (List.length path)

let test_route_distance_needs_cycles () =
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:4 in
  let src = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let dst = Plaid_arch.Mesh.fu_of_pe p ~row:3 ~col:3 in
  (* One registered hop per straight run (HyCUBE-style bypass): the corner
     needs an east run and a south run, so two cycles minimum — one is
     impossible however the router pads. *)
  check Alcotest.bool "too short fails" true
    (Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:0 ~dst_fu:dst ~length:1 ~mode:Route.Hard = None);
  check Alcotest.bool "exact works" true
    (Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:0 ~dst_fu:dst ~length:2 ~mode:Route.Hard <> None);
  check Alcotest.bool "padded works" true
    (Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:0 ~dst_fu:dst ~length:6 ~mode:Route.Hard <> None)

let test_route_padding () =
  (* Longer-than-shortest routes pad in registers. *)
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:4 in
  let src = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let dst = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:1 in
  match Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:0 ~dst_fu:dst ~length:4 ~mode:Route.Hard with
  | None -> Alcotest.fail "padding route not found"
  | Some (path, _) -> check Alcotest.bool "path uses >= 4 steps" true (List.length path >= 4)

let test_route_negative_t_src () =
  (* Annealing may retime a node into negative absolute time (its slack
     window is unbounded below for cross-iteration edges); the router must
     normalize the modulo slot instead of indexing a negative cell. *)
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:4 in
  let src = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let dst = Plaid_arch.Mesh.fu_of_pe p ~row:3 ~col:3 in
  match Route.find mrrg ~src_fu:src ~src_node:0 ~t_src:(-5) ~dst_fu:dst ~length:6 ~mode:Route.Hard with
  | None -> Alcotest.fail "route from negative time not found"
  | Some (path, _) ->
    (* occupy/release at the same negative origin must hit the same cells *)
    Route.occupy_path mrrg ~src_node:0 ~t_src:(-5) path;
    check Alcotest.bool "occupied" true (Mrrg.overuse mrrg = 0);
    Route.release_path mrrg ~src_node:0 ~t_src:(-5) path;
    check Alcotest.int "released cleanly" 0
      (let total = ref 0 in
       for r = 0 to Plaid_arch.Arch.n_resources arch - 1 do
         for s = 0 to 3 do
           total := !total + Mrrg.presence mrrg ~res:r ~slot:s
         done
       done;
       !total)

let test_route_self_loop () =
  (* Accumulator feedback at II=1: value circulates every cycle. *)
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:1 in
  let fu = Plaid_arch.Mesh.fu_of_pe p ~row:1 ~col:1 in
  match Route.find mrrg ~src_fu:fu ~src_node:0 ~t_src:0 ~dst_fu:fu ~length:1 ~mode:Route.Hard with
  | None -> Alcotest.fail "self feedback not routable"
  | Some (path, _) -> check Alcotest.int "through outreg only" 1 (List.length path)

let test_route_respects_occupancy () =
  let arch = Lazy.force st4 in
  let p = Plaid_arch.Mesh.spatio_temporal_4x4 in
  let mrrg = Mrrg.create arch ~ii:1 in
  let src = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:0 in
  let dst = Plaid_arch.Mesh.fu_of_pe p ~row:0 ~col:1 in
  (* Block with a foreign signal on every route taken until exhaustion. *)
  let rec burn k =
    if k > 50 then Alcotest.fail "never exhausted"
    else
      match
        Route.find mrrg ~src_fu:src ~src_node:k ~t_src:0 ~dst_fu:dst ~length:1 ~mode:Route.Hard
      with
      | None -> ()
      | Some (path, _) -> Route.occupy_path mrrg ~src_node:k ~t_src:0 path; burn (k + 1)
  in
  burn 1;
  check Alcotest.bool "hard mode eventually refuses" true
    (Route.find mrrg ~src_fu:src ~src_node:9999 ~t_src:0 ~dst_fu:dst ~length:1 ~mode:Route.Hard
     = None)

(* ---------------------------------------------------------- end-to-end *)

let validate_or_fail m =
  match Mapping.validate m with Ok () -> () | Error msg -> Alcotest.failf "invalid mapping: %s" msg

let map_with algo g =
  let arch = Lazy.force st4 in
  let out = Driver.map ~algo ~arch ~dfg:g ~seed:7 () in
  match out.Driver.mapping with
  | None -> Alcotest.failf "mapper failed on %s" g.Dfg.name
  | Some m -> validate_or_fail m; m

let test_sa_maps_saxpy () =
  let m = map_with (Driver.Sa Anneal.quick) (saxpy_dfg ()) in
  check Alcotest.bool "II small" true (m.Mapping.ii <= 3)

let test_sa_maps_sumsq () =
  let m = map_with (Driver.Sa Anneal.quick) (sumsq_dfg ()) in
  check Alcotest.bool "II small" true (m.Mapping.ii <= 3)

let test_pf_maps_saxpy () =
  let m = map_with (Driver.Pf Pathfinder.quick) (saxpy_dfg ()) in
  check Alcotest.bool "II small" true (m.Mapping.ii <= 3)

let test_pf_maps_sumsq () =
  let m = map_with (Driver.Pf Pathfinder.quick) (sumsq_dfg ()) in
  check Alcotest.bool "II small" true (m.Mapping.ii <= 3)

let test_perf_cycles_formula () =
  let m = map_with (Driver.Sa Anneal.quick) (saxpy_dfg ()) in
  check Alcotest.int "cycles" ((m.Mapping.ii * 15) + Mapping.makespan m) (Mapping.perf_cycles m)

let test_best_of_picks_lower_ii () =
  let g = saxpy_dfg () in
  let arch = Lazy.force st4 in
  let out =
    Driver.best_of ~algos:[ Driver.Sa Anneal.quick; Driver.Pf Pathfinder.quick ] ~arch ~dfg:g
      ~seed:3 ()
  in
  match out.Driver.mapping with
  | None -> Alcotest.fail "best_of found nothing"
  | Some m -> validate_or_fail m

(* Mapping determinism: same seed, same mapping. *)
let test_mapping_deterministic () =
  let g = sumsq_dfg () in
  let arch = Lazy.force st4 in
  let run () =
    match (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch ~dfg:g ~seed:99 ()).Driver.mapping with
    | None -> Alcotest.fail "mapper failed"
    | Some m -> (m.Mapping.ii, Array.to_list m.Mapping.place, Array.to_list m.Mapping.times)
  in
  check
    Alcotest.(triple int (list int) (list int))
    "deterministic" (run ()) (run ())

(* ------------------------------------------------- parallel determinism *)

(* [best_of ~pool] must return bit-identical results for every worker
   count: same mapping (placement, schedule, routes), same MII, same
   attempt count.  Exercised on several suite kernels and two fabrics. *)

let plaid_arch =
  lazy (Plaid_core.Pcu.build ~rows:2 ~cols:2 ~name:"plaid2x2" ()).Plaid_core.Pcu.arch

let fingerprint (o : Driver.outcome) =
  ( o.Driver.mii,
    o.Driver.attempts,
    Option.map
      (fun (m : Mapping.t) -> (m.Mapping.ii, m.Mapping.times, m.Mapping.place, m.Mapping.routes))
      o.Driver.mapping )

let det_kernels = [ "dwconv"; "atax_u2"; "cholesky_u2" ]

let det_archs () = [ ("st4x4", Lazy.force st4); ("plaid2x2", Lazy.force plaid_arch) ]

let test_best_of_parallel_deterministic () =
  let algos = [ Driver.Sa Anneal.quick; Driver.Pf Pathfinder.quick ] in
  List.iter
    (fun (aname, arch) ->
      List.iter
        (fun k ->
          let dfg = Plaid_workloads.Suite.dfg (Plaid_workloads.Suite.find k) in
          let seq = fingerprint (Driver.best_of ~algos ~arch ~dfg ~seed:11 ()) in
          List.iter
            (fun size ->
              Plaid_util.Pool.with_pool ~size (fun pool ->
                  let par = fingerprint (Driver.best_of ~pool ~algos ~arch ~dfg ~seed:11 ()) in
                  if par <> seq then
                    Alcotest.failf "best_of diverged on %s/%s with %d workers" aname k size))
            [ 2; 4 ])
        det_kernels)
    (det_archs ())

let test_map_parallel_ii_search_deterministic () =
  (* the speculative II window must agree with the one-at-a-time search *)
  List.iter
    (fun (aname, arch) ->
      List.iter
        (fun k ->
          let dfg = Plaid_workloads.Suite.dfg (Plaid_workloads.Suite.find k) in
          let algo = Driver.Sa Anneal.quick in
          let seq = fingerprint (Driver.map ~algo ~arch ~dfg ~seed:23 ()) in
          List.iter
            (fun size ->
              Plaid_util.Pool.with_pool ~size (fun pool ->
                  let par = fingerprint (Driver.map ~pool ~algo ~arch ~dfg ~seed:23 ()) in
                  if par <> seq then
                    Alcotest.failf "II search diverged on %s/%s with %d workers" aname k size))
            [ 2; 4 ])
        det_kernels)
    (det_archs ())

let test_best_of_restarts_deterministic () =
  let algos = [ Driver.Sa Anneal.quick; Driver.Pf Pathfinder.quick ] in
  let arch = Lazy.force st4 in
  let dfg = Plaid_workloads.Suite.dfg (Plaid_workloads.Suite.find "dwconv") in
  let seq = fingerprint (Driver.best_of ~restarts:3 ~algos ~arch ~dfg ~seed:5 ()) in
  Plaid_util.Pool.with_pool ~size:4 (fun pool ->
      check Alcotest.bool "restart portfolio identical" true
        (fingerprint (Driver.best_of ~pool ~restarts:3 ~algos ~arch ~dfg ~seed:5 ()) = seq))

(* Property: for random small reduction DFGs, SA produces valid mappings. *)
let prop_sa_valid =
  QCheck.Test.make ~name:"SA mappings validate" ~count:12
    QCheck.(make Gen.(pair (int_range 1 4) (int_range 0 2)))
    (fun (muls, extra_loads) ->
      let b = Dfg.builder ~trip:8 "rand" in
      let loads =
        List.init (1 + extra_loads) (fun i ->
            Dfg.add_node b ~access:{ array = "x"; offset = i; stride = 1 } Op.Load)
      in
      let acc = ref (List.hd loads) in
      for _ = 1 to muls do
        let m = Dfg.add_node b ~imms:[ (1, 3) ] Op.Mul in
        Dfg.add_edge b ~src:!acc ~dst:m ~operand:0 ();
        acc := m
      done;
      let st = Dfg.add_node b ~access:{ array = "y"; offset = 0; stride = 1 } Op.Store in
      Dfg.add_edge b ~src:!acc ~dst:st ~operand:0 ();
      List.iteri
        (fun i ld ->
          if i > 0 then begin
            let sink = Dfg.add_node b ~imms:[ (1, 1) ] Op.Add in
            Dfg.add_edge b ~src:ld ~dst:sink ~operand:0 ();
            let st2 = Dfg.add_node b ~access:{ array = "z"; offset = i; stride = 1 } Op.Store in
            Dfg.add_edge b ~src:sink ~dst:st2 ~operand:0 ()
          end)
        loads;
      let g = Dfg.finish b in
      let arch = Lazy.force st4 in
      match (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch ~dfg:g ~seed:5 ()).Driver.mapping with
      | None -> false
      | Some m -> Mapping.validate m = Ok ())

let suites =
  [
    ( "arch",
      [
        Alcotest.test_case "mesh counts" `Quick test_mesh_counts;
        Alcotest.test_case "mesh capacity" `Quick test_mesh_capacity;
        Alcotest.test_case "fu supports" `Quick test_fu_supports;
        Alcotest.test_case "config bits" `Quick test_config_bits_positive;
        Alcotest.test_case "combinational loop rejected" `Quick test_combinational_loop_rejected;
      ] );
    ( "mrrg",
      [
        Alcotest.test_case "fu exclusive" `Quick test_mrrg_fu_exclusive;
        Alcotest.test_case "signal sharing" `Quick test_mrrg_signal_sharing;
        Alcotest.test_case "overuse" `Quick test_mrrg_overuse;
      ] );
    ( "schedule",
      [
        Alcotest.test_case "satisfies edges" `Quick test_schedule_satisfies_edges;
        Alcotest.test_case "pressure smoothing" `Quick test_schedule_pressure;
        Alcotest.test_case "slack bounds" `Quick test_slack_bounds;
      ] );
    ( "route",
      [
        Alcotest.test_case "adjacent" `Quick test_route_adjacent;
        Alcotest.test_case "distance needs cycles" `Quick test_route_distance_needs_cycles;
        Alcotest.test_case "padding" `Quick test_route_padding;
        Alcotest.test_case "negative t_src" `Quick test_route_negative_t_src;
        Alcotest.test_case "self loop" `Quick test_route_self_loop;
        Alcotest.test_case "respects occupancy" `Quick test_route_respects_occupancy;
      ] );
    ( "mappers",
      [
        Alcotest.test_case "sa saxpy" `Quick test_sa_maps_saxpy;
        Alcotest.test_case "sa sumsq" `Quick test_sa_maps_sumsq;
        Alcotest.test_case "pf saxpy" `Quick test_pf_maps_saxpy;
        Alcotest.test_case "pf sumsq" `Quick test_pf_maps_sumsq;
        Alcotest.test_case "perf formula" `Quick test_perf_cycles_formula;
        Alcotest.test_case "best_of" `Quick test_best_of_picks_lower_ii;
        Alcotest.test_case "deterministic" `Quick test_mapping_deterministic;
      ] );
    ( "parallel-determinism",
      [
        Alcotest.test_case "best_of pool 2/4" `Quick test_best_of_parallel_deterministic;
        Alcotest.test_case "II search pool 2/4" `Quick test_map_parallel_ii_search_deterministic;
        Alcotest.test_case "restart portfolio" `Quick test_best_of_restarts_deterministic;
      ] );
    ("mapping-properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250705 |]) t) [ prop_sa_valid ]);
  ]
