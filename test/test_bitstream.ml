(* Tests for configuration bitstream generation: every valid mapping must
   encode, stay within the architecture's configuration budget, and decode
   back to the routed sources. *)

open Plaid_mapping

let check = Alcotest.check

let st4 = lazy (Plaid_arch.Mesh.build Plaid_arch.Mesh.spatio_temporal_4x4 ~name:"st4")

let plaid2 = lazy (Plaid_core.Pcu.build ~rows:2 ~cols:2 ~name:"p2" ())

let map_st name =
  let e = Plaid_workloads.Suite.find name in
  match
    (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4)
       ~dfg:(Plaid_workloads.Suite.dfg e) ~seed:5 ())
      .Driver.mapping
  with
  | Some m -> m
  | None -> Alcotest.failf "mapping failed for %s" name

let map_plaid name =
  let e = Plaid_workloads.Suite.find name in
  match
    (Plaid_core.Hier_mapper.map ~params:Plaid_core.Hier_mapper.quick ~plaid:(Lazy.force plaid2)
       ~seed:5 (Plaid_workloads.Suite.dfg e))
      .Plaid_core.Hier_mapper.mapping
  with
  | Some m -> m
  | None -> Alcotest.failf "plaid mapping failed for %s" name

let test_generate_st () =
  let m = map_st "gemm_u2" in
  match Bitstream.generate m with
  | Error e -> Alcotest.fail e
  | Ok bs ->
    check Alcotest.bool "has fields" true (List.length bs.Bitstream.fields > 0);
    check Alcotest.bool "within budget" true
      (Bitstream.total_bits bs <= Bitstream.budget_bits bs)

let test_generate_plaid () =
  let m = map_plaid "conv2x2" in
  match Bitstream.generate m with
  | Error e -> Alcotest.fail e
  | Ok bs ->
    check Alcotest.bool "within budget" true
      (Bitstream.total_bits bs <= Bitstream.budget_bits bs)

let test_decode_roundtrip () =
  (* every routed path step must be recoverable from the mux selections *)
  let m = map_st "dwconv" in
  match Bitstream.generate m with
  | Error e -> Alcotest.fail e
  | Ok bs ->
    List.iter
      (fun (r : Mapping.route_entry) ->
        let e = r.re_edge in
        let prev = ref m.place.(e.src) in
        List.iter
          (fun (res, elapsed) ->
            let slot = (m.times.(e.src) + elapsed) mod m.ii in
            (match Bitstream.source_of bs ~res ~slot with
            | Some src -> check Alcotest.int "decoded source" !prev src
            | None -> Alcotest.failf "no selection decoded for resource %d slot %d" res slot);
            prev := res)
          r.re_path)
      m.routes

let test_op_encoding_per_fu () =
  (* a lean (pruned) FU uses a narrower opcode field than a full ALSU *)
  let m = map_st "gemm_u2" in
  match Bitstream.generate m with
  | Error e -> Alcotest.fail e
  | Ok bs ->
    let widths =
      List.filter_map
        (fun (f : Bitstream.field) -> if f.f_kind = `Op then Some f.f_width else None)
        bs.Bitstream.fields
    in
    check Alcotest.bool "op fields present" true (widths <> []);
    List.iter (fun w -> check Alcotest.bool "4-5 bits" true (w >= 4 && w <= 5)) widths

let test_imm_range_enforced () =
  (* immediates beyond 8 bits must be rejected, matching Section 4.3 *)
  let open Plaid_ir in
  let b = Dfg.builder ~trip:4 "bigimm" in
  let ld = Dfg.add_node b ~access:{ array = "x"; offset = 0; stride = 1 } Op.Load in
  let add = Dfg.add_node b ~imms:[ (1, 1000) ] Op.Add in
  let st = Dfg.add_node b ~access:{ array = "y"; offset = 0; stride = 1 } Op.Store in
  Dfg.add_edge b ~src:ld ~dst:add ~operand:0 ();
  Dfg.add_edge b ~src:add ~dst:st ~operand:0 ();
  let g = Dfg.finish b in
  match
    (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4) ~dfg:g ~seed:5 ())
      .Driver.mapping
  with
  | None -> Alcotest.fail "mapping failed"
  | Some m -> (
    match Bitstream.generate m with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected 8-bit immediate rejection")

let test_listing_renders () =
  let m = map_st "dwconv" in
  match Bitstream.generate m with
  | Error e -> Alcotest.fail e
  | Ok bs ->
    let s = Format.asprintf "%a" Bitstream.pp_listing bs in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "mentions total" true (contains s "total")

(* ------------------------------------------ properties on random mappings *)

(* generate + decode must hold on arbitrary mapped programs, not just the
   suite kernels: every route step of every generated mapping decodes back
   to its upstream resource, and the encoding stays within budget *)
let prop_bitstream_decodes_random_mappings =
  QCheck.Test.make ~name:"bitstream decodes routed sources on random mappings" ~count:6
    QCheck.(make ~print:string_of_int Gen.(int_range 1 100_000))
    (fun seed ->
      let spec = { Plaid_ir.Generate.seed; size = 6; trip = 4 } in
      List.for_all
        (fun ((name, g) : string * Plaid_ir.Dfg.t) ->
          match
            (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4) ~dfg:g ~seed ())
              .Driver.mapping
          with
          | None -> true (* feasibility is not under test *)
          | Some m -> (
            match Bitstream.generate m with
            | Error e -> QCheck.Test.fail_reportf "%s: %s" name e
            | Ok bs ->
              Bitstream.total_bits bs <= Bitstream.budget_bits bs
              && List.for_all
                   (fun (r : Mapping.route_entry) ->
                     let e = r.re_edge in
                     let prev = ref m.Mapping.place.(e.src) in
                     List.for_all
                       (fun (res, elapsed) ->
                         let slot = (m.Mapping.times.(e.src) + elapsed) mod m.Mapping.ii in
                         let ok = Bitstream.source_of bs ~res ~slot = Some !prev in
                         prev := res;
                         ok)
                       r.re_path)
                   m.Mapping.routes))
        (Plaid_ir.Generate.fuzz_families spec))

let suites =
  [
    ( "bitstream",
      [
        Alcotest.test_case "generate (ST)" `Quick test_generate_st;
        Alcotest.test_case "generate (Plaid)" `Quick test_generate_plaid;
        Alcotest.test_case "decode roundtrip" `Quick test_decode_roundtrip;
        Alcotest.test_case "per-FU opcode width" `Quick test_op_encoding_per_fu;
        Alcotest.test_case "8-bit immediate enforced" `Quick test_imm_range_enforced;
        Alcotest.test_case "listing renders" `Quick test_listing_renders;
        Test_qc.to_alcotest prop_bitstream_decodes_random_mappings;
      ] );
  ]
