(* Tests for the exact branch-and-bound mapper, including optimality-gap
   certification of the heuristic mappers on small DFGs. *)

open Plaid_ir
open Plaid_mapping

let check = Alcotest.check

let st4 = lazy (Plaid_arch.Mesh.build Plaid_arch.Mesh.spatio_temporal_4x4 ~name:"st4")

let small_chain k =
  let g = Generate.chain { Generate.seed = k; size = 4; trip = 8 } in
  g

let test_exact_finds_mapping () =
  let g = small_chain 1 in
  match Exact.min_ii (Lazy.force st4) g ~budget:200000 () with
  | None -> Alcotest.fail "exact found nothing"
  | Some (ii, m) ->
    check Alcotest.int "at mii" (Analysis.mii g (Plaid_arch.Arch.capacity (Lazy.force st4))) ii;
    (match Mapping.validate m with Ok () -> () | Error e -> Alcotest.fail e)

let test_exact_exhausts_budget_gracefully () =
  let g = Generate.random_dag { Generate.seed = 2; size = 10; trip = 8 } in
  let cap = Plaid_arch.Arch.capacity (Lazy.force st4) in
  let ii = Analysis.mii g cap in
  match Schedule.compute g ~ii ~cap with
  | None -> ()
  | Some times ->
    let o = Exact.find (Lazy.force st4) g ~ii ~times ~budget:5 in
    check Alcotest.bool "budget respected" true (o.Exact.explored <= 6)

let test_exact_agrees_with_validator () =
  List.iter
    (fun seed ->
      let g = Generate.tree { Generate.seed = seed; size = 4; trip = 8 } in
      match Exact.min_ii (Lazy.force st4) g ~budget:200000 () with
      | None -> Alcotest.failf "tree seed %d unmappable" seed
      | Some (_, m) -> (
        match Mapping.validate m with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: %s" seed e))
    [ 1; 2; 3 ]

(* The headline: SA reaches the exact minimum II (or within +1) on small
   kernels — the annealer is not leaving easy performance on the table. *)
let test_sa_optimality_gap () =
  List.iter
    (fun seed ->
      let g = Generate.chain { Generate.seed = seed; size = 5; trip = 8 } in
      let arch = Lazy.force st4 in
      match Exact.min_ii arch g ~budget:300000 () with
      | None -> () (* nothing to compare against *)
      | Some (exact_ii, _) -> (
        match
          (Driver.map ~algo:(Driver.Sa Anneal.default) ~arch ~dfg:g ~seed:7 ()).Driver.mapping
        with
        | None -> Alcotest.failf "SA failed where exact succeeded (seed %d)" seed
        | Some m ->
          if m.Mapping.ii > exact_ii + 1 then
            Alcotest.failf "seed %d: SA II %d vs exact %d" seed m.Mapping.ii exact_ii))
    [ 1; 2; 3; 4 ]

let suites =
  [
    ( "exact",
      [
        Alcotest.test_case "finds mapping at MII" `Quick test_exact_finds_mapping;
        Alcotest.test_case "budget respected" `Quick test_exact_exhausts_budget_gracefully;
        Alcotest.test_case "valid mappings" `Quick test_exact_agrees_with_validator;
        Alcotest.test_case "SA optimality gap" `Slow test_sa_optimality_gap;
      ] );
  ]
