(* Tests for the Domain worker pool: exactly-once execution, ordered
   results, exception propagation at join, sequential equivalence of a
   size-1 pool, nested submission, and qcheck properties over random task
   batches. *)

let check = Alcotest.check

exception Boom of int

let test_results_in_order () =
  Plaid_util.Pool.with_pool ~size:4 (fun pool ->
      let tasks = List.init 25 (fun i () -> i * i) in
      check
        Alcotest.(list int)
        "squares in task order"
        (List.init 25 (fun i -> i * i))
        (Plaid_util.Pool.run pool tasks))

let test_tasks_execute_exactly_once () =
  Plaid_util.Pool.with_pool ~size:4 (fun pool ->
      let n = 50 in
      let counts = Array.make n 0 in
      let m = Mutex.create () in
      let tasks =
        List.init n (fun i () ->
            Mutex.lock m;
            counts.(i) <- counts.(i) + 1;
            Mutex.unlock m)
      in
      ignore (Plaid_util.Pool.run pool tasks);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "task %d ran %d times" i c)
        counts)

let test_empty_batch () =
  Plaid_util.Pool.with_pool ~size:2 (fun pool ->
      check Alcotest.(list int) "empty" [] (Plaid_util.Pool.run pool []))

let test_exception_reraised_at_join () =
  Plaid_util.Pool.with_pool ~size:3 (fun pool ->
      let ran = Array.make 6 false in
      let tasks =
        List.init 6 (fun i () ->
            ran.(i) <- true;
            if i = 2 || i = 4 then raise (Boom i))
      in
      (match Plaid_util.Pool.run pool tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        (* deterministic join: the lowest-indexed failure wins *)
        check Alcotest.int "first failing task" 2 i);
      (* the whole batch still settled before the join raised *)
      Array.iteri (fun i r -> if not r then Alcotest.failf "task %d never ran" i) ran)

let test_size_one_is_sequential () =
  Plaid_util.Pool.with_pool ~size:1 (fun pool ->
      check Alcotest.int "no worker domains" 1 (Plaid_util.Pool.size pool);
      (* inline execution: tasks see each other's left-to-right effects *)
      let trace = ref [] in
      let tasks = List.init 8 (fun i () -> trace := i :: !trace; i) in
      let out = Plaid_util.Pool.run pool tasks in
      check Alcotest.(list int) "results" (List.init 8 Fun.id) out;
      check Alcotest.(list int) "strict left-to-right order" (List.init 8 (fun i -> 7 - i)) !trace)

let test_nested_submission () =
  Plaid_util.Pool.with_pool ~size:2 (fun pool ->
      (* every task submits a sub-batch on the same pool; with 2 domains and
         4 outer tasks this deadlocks unless waiters drain the queue *)
      let outer =
        List.init 4 (fun i () ->
            let inner = List.init 3 (fun j () -> (i * 10) + j) in
            List.fold_left ( + ) 0 (Plaid_util.Pool.run pool inner))
      in
      check
        Alcotest.(list int)
        "nested sums" [ 3; 33; 63; 93 ]
        (Plaid_util.Pool.run pool outer))

let test_run_after_shutdown_raises () =
  let pool = Plaid_util.Pool.create ~size:2 () in
  Plaid_util.Pool.shutdown pool;
  Plaid_util.Pool.shutdown pool (* idempotent *);
  match Plaid_util.Pool.run pool [ (fun () -> ()) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------- properties *)

(* a pool of any size computes the same results as List.map *)
let prop_pool_matches_sequential =
  QCheck.Test.make ~name:"pool run = sequential map" ~count:30
    QCheck.(make Gen.(pair (int_range 1 6) (list_size (int_range 0 40) small_int)))
    (fun (size, xs) ->
      let expect = List.map (fun x -> (x * 7) + 1) xs in
      Plaid_util.Pool.with_pool ~size (fun pool ->
          Plaid_util.Pool.run pool (List.map (fun x () -> (x * 7) + 1) xs) = expect))

(* every task runs exactly once, whatever the batch/pool geometry *)
let prop_exactly_once =
  QCheck.Test.make ~name:"all tasks execute exactly once" ~count:30
    QCheck.(make Gen.(pair (int_range 1 5) (int_range 0 60)))
    (fun (size, n) ->
      let counts = Array.make (max 1 n) 0 in
      let m = Mutex.create () in
      Plaid_util.Pool.with_pool ~size (fun pool ->
          ignore
            (Plaid_util.Pool.run pool
               (List.init n (fun i () ->
                    Mutex.lock m;
                    counts.(i) <- counts.(i) + 1;
                    Mutex.unlock m))));
      Array.for_all (fun c -> c <= 1) counts
      && Array.to_list counts = List.init (max 1 n) (fun i -> if i < n then 1 else 0))

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "results in order" `Quick test_results_in_order;
        Alcotest.test_case "exactly once" `Quick test_tasks_execute_exactly_once;
        Alcotest.test_case "empty batch" `Quick test_empty_batch;
        Alcotest.test_case "exception at join" `Quick test_exception_reraised_at_join;
        Alcotest.test_case "size 1 sequential" `Quick test_size_one_is_sequential;
        Alcotest.test_case "nested submission" `Quick test_nested_submission;
        Alcotest.test_case "run after shutdown" `Quick test_run_after_shutdown_raises;
      ] );
    ( "pool-properties",
      List.map
        (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250806 |]) t)
        [ prop_pool_matches_sequential; prop_exactly_once ] );
  ]
