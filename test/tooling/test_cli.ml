(* End-to-end gate for the plaidc observability surface, run from
   `dune runtest`:

   - `plaidc map --trace --metrics` must exit 0 and write a trace that is
     valid Chrome trace-event JSON with at least one span from every
     instrumented subsystem (driver, pf, sa, pool, sim);
   - a mapping corrupted on disk must be rejected by the loader (exit 1),
     and with --no-validate must reach the simulator and take the
     simulation-MISMATCH path: message on stderr, nothing on stdout,
     exit 1;
   - `plaidc faults` must emit a valid JSON campaign report that is
     byte-identical for -j 1 and -j 4, exit 1 with MISMATCH lines on
     stderr when unrepaired faulty mappings mis-simulate, and exit 0 in
     repair mode once every surviving mapping verifies;
   - `plaidc fuzz` must exit 0 on a clean campaign, produce byte-identical
     reports at every worker count, and dump one replayable case file per
     trial under --dump-cases;
   - unknown subcommands, unknown flags, and out-of-range argument values
     (negative counts, -j 0) must exit 2 with a diagnostic on stderr. *)

let plaidc = Sys.argv.(1)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" s)
    fmt

let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- traced map run ---------------------------------------------------- *)

let () =
  let rc =
    sh "%s map -k gemm_u2 -a st -j 2 --trace trace.json --metrics -o gemm.map > map.out 2> map.err"
      plaidc
  in
  if rc <> 0 then fail "traced map exited %d" rc;
  if not (contains ~needle:"bit-exact" (read_file "map.out")) then
    fail "traced map did not report a verified simulation";
  let err = read_file "map.err" in
  if not (contains ~needle:"-- metrics --" err) then fail "--metrics printed no summary";
  if not (contains ~needle:"trace:" err) then fail "--trace printed no confirmation";
  match Plaid_obs.Json.of_string (String.trim (read_file "trace.json")) with
  | Error e -> fail "trace.json is not valid JSON: %s" e
  | Ok doc ->
    let events =
      match Plaid_obs.Json.member "traceEvents" doc with
      | Some evs -> Plaid_obs.Json.to_list evs
      | None -> []
    in
    if events = [] then fail "trace.json has no traceEvents";
    let cat_of ev =
      Option.bind (Plaid_obs.Json.member "cat" ev) Plaid_obs.Json.str
    in
    List.iter
      (fun subsystem ->
        let n = List.length (List.filter (fun ev -> cat_of ev = Some subsystem) events) in
        if n = 0 then fail "no spans from subsystem %S in trace.json" subsystem)
      [ "driver"; "pf"; "sa"; "pool"; "sim" ]

(* --- corrupted mapping ------------------------------------------------- *)

let () =
  (* break node 0's schedule time so the replayed event order is wrong *)
  let corrupted =
    String.split_on_char '\n' (read_file "gemm.map")
    |> List.map (fun line ->
           if String.length line >= 7 && String.sub line 0 7 = "time 0 " then "time 0 9999"
           else line)
    |> String.concat "\n"
  in
  let oc = open_out "gemm_bad.map" in
  output_string oc corrupted;
  close_out oc;
  (* the validating loader must reject it *)
  let rc = sh "%s run -f gemm_bad.map > bad.out 2> bad.err" plaidc in
  if rc <> 1 then fail "corrupted mapfile: expected load failure (exit 1), got %d" rc;
  (* with validation skipped it must reach the simulator and mismatch *)
  let rc = sh "%s run -f gemm_bad.map --no-validate > bad2.out 2> bad2.err" plaidc in
  if rc <> 1 then fail "--no-validate on corrupted mapfile: expected exit 1, got %d" rc;
  if not (contains ~needle:"simulation MISMATCH" (read_file "bad2.err")) then
    fail "mismatch message missing from stderr";
  if contains ~needle:"MISMATCH" (read_file "bad2.out") then
    fail "mismatch message leaked to stdout";
  (* and the pristine file still verifies cleanly *)
  let rc = sh "%s run -f gemm.map > good.out 2> good.err" plaidc in
  if rc <> 0 then fail "pristine mapfile: expected exit 0, got %d" rc

(* --- fault campaigns --------------------------------------------------- *)

let () =
  (* detection campaign: the report is machine-readable, deterministic in
     the worker count, and mismatches are signalled out-of-band *)
  let campaign = "faults -k doitgen_u2 -a st --seed 3 --faults 2 --trials 6" in
  let rc = sh "%s %s --json - -j 1 > faults1.json 2> faults1.err" plaidc campaign in
  if rc <> 1 then fail "detection campaign with affected trials: expected exit 1, got %d" rc;
  if not (contains ~needle:"MISMATCH" (read_file "faults1.err")) then
    fail "detection campaign printed no MISMATCH line on stderr";
  if contains ~needle:"MISMATCH" (read_file "faults1.json") then
    fail "MISMATCH diagnostics leaked into the JSON report";
  (match Plaid_obs.Json.of_string (String.trim (read_file "faults1.json")) with
  | Error e -> fail "campaign report is not valid JSON: %s" e
  | Ok doc ->
    List.iter
      (fun key ->
        if Plaid_obs.Json.member key doc = None then
          fail "campaign report is missing %S" key)
      [ "arch"; "kernel"; "yield"; "ii_degradation"; "detected"; "trial_results" ]);
  let _ = sh "%s %s --json - -j 4 > faults4.json 2> /dev/null" plaidc campaign in
  if read_file "faults1.json" <> read_file "faults4.json" then
    fail "campaign report differs between -j 1 and -j 4";
  (* repair campaign: every surviving mapping verifies, so the exit is clean *)
  let rc = sh "%s %s --repair --json - -j 2 > repair.json 2> repair.err" plaidc campaign in
  if rc <> 0 then fail "repair campaign: expected exit 0, got %d" rc

(* --- fuzz campaigns ---------------------------------------------------- *)

let () =
  (* a clean campaign exits 0 and the report is byte-identical in -j *)
  let rc = sh "%s fuzz --trials 10 --seed 9 -j 1 > fuzz1.out 2> fuzz1.err" plaidc in
  if rc <> 0 then fail "fuzz campaign: expected exit 0, got %d" rc;
  let out = read_file "fuzz1.out" in
  if not (contains ~needle:"summary: 10 trials" out) then
    fail "fuzz report is missing the trial summary";
  if not (contains ~needle:"feasibility:" out) then
    fail "fuzz report is missing the per-mapper feasibility line";
  let _ = sh "%s fuzz --trials 10 --seed 9 -j 3 > fuzz3.out 2> /dev/null" plaidc in
  if read_file "fuzz3.out" <> out then fail "fuzz report differs between -j 1 and -j 3";
  (* --dump-cases writes one replayable file per trial *)
  let rc = sh "%s fuzz --trials 3 --seed 9 --dump-cases fuzzcases > dump.out 2> dump.err" plaidc in
  if rc <> 0 then fail "fuzz --dump-cases: expected exit 0, got %d" rc;
  let dumped =
    Sys.readdir "fuzzcases" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
  in
  if List.length dumped <> 3 then
    fail "fuzz --dump-cases wrote %d case files (want 3)" (List.length dumped)

(* --- uniform bad-name handling ----------------------------------------- *)

let () =
  let rc = sh "%s frobnicate > sub.out 2> sub.err" plaidc in
  if rc <> 2 then fail "unknown subcommand: expected exit 2, got %d" rc;
  let rc = sh "%s map -k gemm_u2 -a nosuch > arch.out 2> arch.err" plaidc in
  if rc <> 2 then fail "unknown architecture: expected exit 2, got %d" rc;
  if not (contains ~needle:"plaid" (read_file "arch.err")) then
    fail "unknown-architecture error does not list the valid choices";
  (* bad argument values: stderr diagnostic + exit 2, uniformly *)
  let rc = sh "%s fuzz --frobnicate > badflag.out 2> badflag.err" plaidc in
  if rc <> 2 then fail "unknown fuzz flag: expected exit 2, got %d" rc;
  let rc = sh "%s fuzz --trials=-3 > negt.out 2> negt.err" plaidc in
  if rc <> 2 then fail "negative fuzz trial count: expected exit 2, got %d" rc;
  if String.trim (read_file "negt.err") = "" then
    fail "negative fuzz trial count printed nothing on stderr";
  if String.trim (read_file "negt.out") <> "" then
    fail "negative-trials diagnostic leaked to stdout";
  let rc = sh "%s fuzz --trials 1 -j 0 > j0.out 2> j0.err" plaidc in
  if rc <> 2 then fail "fuzz -j 0: expected exit 2, got %d" rc;
  let rc = sh "%s faults -k gemm_u2 -a st --faults=-1 > negf.out 2> negf.err" plaidc in
  if rc <> 2 then fail "negative fault count: expected exit 2, got %d" rc;
  let rc = sh "%s exp table2 -j 0 > jexp.out 2> jexp.err" plaidc in
  if rc <> 2 then fail "exp -j 0: expected exit 2, got %d" rc

let () =
  if !failures > 0 then exit 1;
  print_endline "cli gate: trace/metrics, fault campaigns, fuzz campaigns, and error handling OK"
