(* End-to-end gate for the plaidc observability surface, run from
   `dune runtest`:

   - `plaidc map --trace --metrics` must exit 0 and write a trace that is
     valid Chrome trace-event JSON with at least one span from every
     instrumented subsystem (driver, pf, sa, pool, sim);
   - an unreadable, truncated, or corrupted mapping file must be rejected
     by the loader with one line on stderr and the uniform bad-input
     exit 2; with --no-validate a corrupted file must reach the simulator
     and take the simulation-MISMATCH path: message on stderr, nothing on
     stdout, exit 1;
   - `plaidc serve` must answer a replayed request from the store on the
     second pass (no recompute, byte-identical payload, equal to what
     `plaidc map -o` writes), `plaidc cache` must report/verify/heal the
     store, and `plaidc --version` must carry the fingerprint salt;
   - `plaidc faults` must emit a valid JSON campaign report that is
     byte-identical for -j 1 and -j 4, exit 1 with MISMATCH lines on
     stderr when unrepaired faulty mappings mis-simulate, and exit 0 in
     repair mode once every surviving mapping verifies;
   - `plaidc fuzz` must exit 0 on a clean campaign, produce byte-identical
     reports at every worker count, and dump one replayable case file per
     trial under --dump-cases;
   - `plaidc dse` must run a tiny campaign deterministically (byte-equal
     reports at -j 1 and -j 4, valid JSON with --json -), and reject bad
     space/suite/strategy names, malformed budgets, conflicting strategy
     flags, and unreadable space files with one stderr line and exit 2;
   - unknown subcommands, unknown flags, and out-of-range argument values
     (negative counts, -j 0) must exit 2 with a diagnostic on stderr. *)

let plaidc = Sys.argv.(1)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" s)
    fmt

let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- traced map run ---------------------------------------------------- *)

let () =
  let rc =
    sh "%s map -k gemm_u2 -a st -j 2 --trace trace.json --metrics -o gemm.map > map.out 2> map.err"
      plaidc
  in
  if rc <> 0 then fail "traced map exited %d" rc;
  if not (contains ~needle:"bit-exact" (read_file "map.out")) then
    fail "traced map did not report a verified simulation";
  let err = read_file "map.err" in
  if not (contains ~needle:"-- metrics --" err) then fail "--metrics printed no summary";
  if not (contains ~needle:"trace:" err) then fail "--trace printed no confirmation";
  match Plaid_obs.Json.of_string (String.trim (read_file "trace.json")) with
  | Error e -> fail "trace.json is not valid JSON: %s" e
  | Ok doc ->
    let events =
      match Plaid_obs.Json.member "traceEvents" doc with
      | Some evs -> Plaid_obs.Json.to_list evs
      | None -> []
    in
    if events = [] then fail "trace.json has no traceEvents";
    let cat_of ev =
      Option.bind (Plaid_obs.Json.member "cat" ev) Plaid_obs.Json.str
    in
    List.iter
      (fun subsystem ->
        let n = List.length (List.filter (fun ev -> cat_of ev = Some subsystem) events) in
        if n = 0 then fail "no spans from subsystem %S in trace.json" subsystem)
      [ "driver"; "pf"; "sa"; "pool"; "sim" ]

(* --- corrupted mapping ------------------------------------------------- *)

let () =
  (* break node 0's schedule time so the replayed event order is wrong *)
  let corrupted =
    String.split_on_char '\n' (read_file "gemm.map")
    |> List.map (fun line ->
           if String.length line >= 7 && String.sub line 0 7 = "time 0 " then "time 0 9999"
           else line)
    |> String.concat "\n"
  in
  let oc = open_out "gemm_bad.map" in
  output_string oc corrupted;
  close_out oc;
  (* the validating loader must reject it: one stderr line, exit 2 *)
  let rc = sh "%s run -f gemm_bad.map > bad.out 2> bad.err" plaidc in
  if rc <> 2 then fail "corrupted mapfile: expected load failure (exit 2), got %d" rc;
  if String.trim (read_file "bad.out") <> "" then
    fail "corrupted-mapfile diagnostic leaked to stdout";
  (match String.split_on_char '\n' (String.trim (read_file "bad.err")) with
  | [ line ] ->
    if not (contains ~needle:"gemm_bad.map" line) then
      fail "corrupted-mapfile diagnostic does not name the file"
  | lines -> fail "corrupted mapfile: expected one stderr line, got %d" (List.length lines));
  (* unreadable and truncated inputs take the same one-line exit-2 path *)
  let rc = sh "%s run -f nonexistent.map > miss.out 2> miss.err" plaidc in
  if rc <> 2 then fail "missing mapfile: expected exit 2, got %d" rc;
  if String.trim (read_file "miss.err") = "" then
    fail "missing mapfile printed nothing on stderr";
  let gemm = read_file "gemm.map" in
  let oc = open_out "gemm_cut.map" in
  output_string oc (String.sub gemm 0 (String.length gemm / 2));
  close_out oc;
  let rc = sh "%s run -f gemm_cut.map > cut.out 2> cut.err" plaidc in
  if rc <> 2 then fail "truncated mapfile: expected exit 2, got %d" rc;
  let rc = sh "%s compile -f nonexistent.k > nok.out 2> nok.err" plaidc in
  if rc <> 2 then fail "missing kernel source: expected exit 2, got %d" rc;
  (* with validation skipped it must reach the simulator and mismatch *)
  let rc = sh "%s run -f gemm_bad.map --no-validate > bad2.out 2> bad2.err" plaidc in
  if rc <> 1 then fail "--no-validate on corrupted mapfile: expected exit 1, got %d" rc;
  if not (contains ~needle:"simulation MISMATCH" (read_file "bad2.err")) then
    fail "mismatch message missing from stderr";
  if contains ~needle:"MISMATCH" (read_file "bad2.out") then
    fail "mismatch message leaked to stdout";
  (* and the pristine file still verifies cleanly *)
  let rc = sh "%s run -f gemm.map > good.out 2> good.err" plaidc in
  if rc <> 0 then fail "pristine mapfile: expected exit 0, got %d" rc

(* --- fault campaigns --------------------------------------------------- *)

let () =
  (* detection campaign: the report is machine-readable, deterministic in
     the worker count, and mismatches are signalled out-of-band *)
  let campaign = "faults -k doitgen_u2 -a st --seed 3 --faults 2 --trials 6" in
  let rc = sh "%s %s --json - -j 1 > faults1.json 2> faults1.err" plaidc campaign in
  if rc <> 1 then fail "detection campaign with affected trials: expected exit 1, got %d" rc;
  if not (contains ~needle:"MISMATCH" (read_file "faults1.err")) then
    fail "detection campaign printed no MISMATCH line on stderr";
  if contains ~needle:"MISMATCH" (read_file "faults1.json") then
    fail "MISMATCH diagnostics leaked into the JSON report";
  (match Plaid_obs.Json.of_string (String.trim (read_file "faults1.json")) with
  | Error e -> fail "campaign report is not valid JSON: %s" e
  | Ok doc ->
    List.iter
      (fun key ->
        if Plaid_obs.Json.member key doc = None then
          fail "campaign report is missing %S" key)
      [ "arch"; "kernel"; "yield"; "ii_degradation"; "detected"; "trial_results" ]);
  let _ = sh "%s %s --json - -j 4 > faults4.json 2> /dev/null" plaidc campaign in
  if read_file "faults1.json" <> read_file "faults4.json" then
    fail "campaign report differs between -j 1 and -j 4";
  (* repair campaign: every surviving mapping verifies, so the exit is clean *)
  let rc = sh "%s %s --repair --json - -j 2 > repair.json 2> repair.err" plaidc campaign in
  if rc <> 0 then fail "repair campaign: expected exit 0, got %d" rc

(* --- fuzz campaigns ---------------------------------------------------- *)

let () =
  (* a clean campaign exits 0 and the report is byte-identical in -j *)
  let rc = sh "%s fuzz --trials 10 --seed 9 -j 1 > fuzz1.out 2> fuzz1.err" plaidc in
  if rc <> 0 then fail "fuzz campaign: expected exit 0, got %d" rc;
  let out = read_file "fuzz1.out" in
  if not (contains ~needle:"summary: 10 trials" out) then
    fail "fuzz report is missing the trial summary";
  if not (contains ~needle:"feasibility:" out) then
    fail "fuzz report is missing the per-mapper feasibility line";
  let _ = sh "%s fuzz --trials 10 --seed 9 -j 3 > fuzz3.out 2> /dev/null" plaidc in
  if read_file "fuzz3.out" <> out then fail "fuzz report differs between -j 1 and -j 3";
  (* --dump-cases writes one replayable file per trial *)
  let rc = sh "%s fuzz --trials 3 --seed 9 --dump-cases fuzzcases > dump.out 2> dump.err" plaidc in
  if rc <> 0 then fail "fuzz --dump-cases: expected exit 0, got %d" rc;
  let dumped =
    Sys.readdir "fuzzcases" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
  in
  if List.length dumped <> 3 then
    fail "fuzz --dump-cases wrote %d case files (want 3)" (List.length dumped)

(* --- serving & caching ------------------------------------------------- *)

(* payload bytes of the first ok-framed response in a protocol transcript *)
let first_payload out =
  match String.index_opt out '\n' with
  | None -> ""
  | Some i -> (
    match String.split_on_char ' ' (String.sub out 0 i) with
    | "ok" :: len :: _ -> (
      match int_of_string_opt len with
      | Some n when i + 1 + n <= String.length out -> String.sub out (i + 1) n
      | _ -> "")
    | _ -> "")

let () =
  (* --version carries the fingerprint salt, so operators can correlate
     cache generations with builds *)
  let rc = sh "%s --version > ver.out 2> ver.err" plaidc in
  if rc <> 0 then fail "--version exited %d" rc;
  if not (contains ~needle:"plaidmap-1" (read_file "ver.out")) then
    fail "--version does not carry the cache fingerprint salt";
  (* two-pass protocol replay over one store: the second pass must be
     served from disk (no recompute) with a byte-identical payload, and
     the payload must equal the mapfile the one-shot CLI wrote *)
  let oc = open_out "serve.req" in
  output_string oc "map kernel=gemm_u2 arch=st seed=2025\nquit\n";
  close_out oc;
  let rc = sh "%s serve --cache-dir srvcache < serve.req > pass1.out 2> serve1.err" plaidc in
  if rc <> 0 then fail "serve pass 1 exited %d" rc;
  let rc =
    sh "%s serve --cache-dir srvcache --metrics < serve.req > pass2.out 2> serve2.err" plaidc
  in
  if rc <> 0 then fail "serve pass 2 exited %d" rc;
  let p1 = read_file "pass1.out" and p2 = read_file "pass2.out" in
  if not (contains ~needle:"source=compute" p1) then
    fail "serve pass 1 did not report a compute";
  if contains ~needle:"source=compute" p2 then
    fail "serve pass 2 recomputed a cached mapping";
  if not (contains ~needle:"source=disk" p2) then
    fail "serve pass 2 was not served from the store";
  if first_payload p1 = "" then fail "serve pass 1 returned no payload";
  if first_payload p1 <> first_payload p2 then
    fail "served payload differs between passes";
  if first_payload p1 <> read_file "gemm.map" then
    fail "served payload differs from the mapfile 'plaidc map -o' writes";
  if not (contains ~needle:"cache_hit_disk" (read_file "serve2.err")) then
    fail "serve --metrics does not surface the cache counters";
  (* cache operations over the populated store *)
  let rc = sh "%s cache stats --cache-dir srvcache > cst.out 2> cst.err" plaidc in
  if rc <> 0 then fail "cache stats exited %d" rc;
  if not (contains ~needle:"1 entries" (read_file "cst.out")) then
    fail "cache stats does not report the stored entry";
  let rc = sh "%s cache verify --cache-dir srvcache > cvf.out 2> cvf.err" plaidc in
  if rc <> 0 then fail "cache verify on a clean store exited %d" rc;
  if not (contains ~needle:"0 corrupt" (read_file "cvf.out")) then
    fail "cache verify miscounts a clean store";
  (* flip one byte of the stored object: verify must flag it (exit 1) and
     gc must heal the store back to verifiable *)
  let object_file =
    let objects = Filename.concat "srvcache" "objects" in
    let shard = Filename.concat objects (Sys.readdir objects).(0) in
    Filename.concat shard (Sys.readdir shard).(0)
  in
  let blob = Bytes.of_string (read_file object_file) in
  Bytes.set blob 40 (Char.chr (Char.code (Bytes.get blob 40) lxor 1));
  let oc = open_out_bin object_file in
  output_string oc (Bytes.to_string blob);
  close_out oc;
  let rc = sh "%s cache verify --cache-dir srvcache > cvf2.out 2> cvf2.err" plaidc in
  if rc <> 1 then fail "cache verify on a corrupted store: expected exit 1, got %d" rc;
  let rc = sh "%s cache gc --cache-dir srvcache > cgc.out 2> cgc.err" plaidc in
  if rc <> 0 then fail "cache gc exited %d" rc;
  let rc = sh "%s cache verify --cache-dir srvcache > cvf3.out 2> cvf3.err" plaidc in
  if rc <> 0 then fail "cache verify after gc exited %d" rc;
  (* a corrupt entry is a miss, never a wrong answer: the next request
     recomputes and re-stores the identical payload *)
  let rc = sh "%s serve --cache-dir srvcache < serve.req > pass3.out 2> serve3.err" plaidc in
  if rc <> 0 then fail "serve pass 3 exited %d" rc;
  if first_payload (read_file "pass3.out") <> first_payload p1 then
    fail "recomputed payload differs after corruption was collected";
  (* unknown cache action: uniform exit 2 *)
  let rc = sh "%s cache frobnicate > cbad.out 2> cbad.err" plaidc in
  if rc <> 2 then fail "unknown cache action: expected exit 2, got %d" rc

(* --- service telemetry verbs ------------------------------------------- *)

(* split a protocol transcript into (header, payload) frames *)
let parse_frames out =
  let n = String.length out in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match String.index_from_opt out i '\n' with
      | None -> List.rev acc
      | Some j -> (
        let header = String.sub out i (j - i) in
        match String.split_on_char ' ' header with
        | "ok" :: len :: _ -> (
          match int_of_string_opt len with
          | Some l when j + 1 + l <= n ->
            (* skip the payload bytes and their trailing newline *)
            go (j + 1 + l + 1) ((header, String.sub out (j + 1) l) :: acc)
          | _ -> List.rev ((header, "") :: acc))
        | _ -> go (j + 1) ((header, "") :: acc))
  in
  go 0 []

let () =
  (* metrics and health answered mid-replay, over the store the previous
     section populated: the exposition must validate and must carry the
     request-latency buckets and the cache counters this very replay bumped *)
  let oc = open_out "serve_tel.req" in
  output_string oc "map kernel=gemm_u2 arch=st seed=2025\nmetrics\nhealth\nquit\n";
  close_out oc;
  let rc =
    sh "%s serve --cache-dir srvcache --slow-ms 5000 < serve_tel.req > tel.out 2> tel.err"
      plaidc
  in
  if rc <> 0 then fail "serve telemetry replay exited %d" rc;
  (match parse_frames (read_file "tel.out") with
  | [ (map_hdr, _); (_, metrics); (_, health); _quit ] ->
    if not (contains ~needle:"source=" map_hdr) then
      fail "replayed map response carries no source tag: %s" map_hdr;
    (match Plaid_obs.Export.check_openmetrics metrics with
    | Ok () -> ()
    | Error e -> fail "serve metrics verb answered invalid OpenMetrics: %s" e);
    List.iter
      (fun needle ->
        if not (contains ~needle metrics) then
          fail "metrics exposition is missing %s" needle)
      [
        "plaid_serve_request_ms_bucket{le=";
        "plaid_serve_request_ms_count";
        "plaid_cache_hit_disk_total";
        "plaid_cache_miss_total";
      ];
    if not (String.length health >= 2 && String.sub health 0 2 = "ok") then
      fail "health verb did not answer ok: %s" health;
    List.iter
      (fun needle ->
        if not (contains ~needle health) then fail "health line is missing %s" needle)
      [ "uptime_s="; "requests="; "errors="; "cache_mem_hits=" ]
  | fs -> fail "serve telemetry replay answered %d frames (want 4)" (List.length fs));
  (* a positive --metrics-interval is accepted (the replay finishes before
     the first tick; the flag's value validation is what's under test) *)
  let rc = sh "%s serve --metrics-interval 5 < serve.req > /dev/null 2> /dev/null" plaidc in
  if rc <> 0 then fail "serve --metrics-interval 5 exited %d" rc

(* --- mapper explainability reports ------------------------------------- *)

let () =
  (* the report must not perturb the mapping pipeline: stdout is
     byte-identical with and without --report, at -j 1 and -j 4 *)
  let rc = sh "%s map -k doitgen_u2 -a st -j 1 > rep_off.out 2> /dev/null" plaidc in
  if rc <> 0 then fail "map without --report exited %d" rc;
  let rc =
    sh "%s map -k doitgen_u2 -a st -j 1 --report rep.txt > rep_on.out 2> rep_err1.err" plaidc
  in
  if rc <> 0 then fail "map --report exited %d" rc;
  if read_file "rep_off.out" <> read_file "rep_on.out" then
    fail "--report changed the mapping pipeline's stdout";
  let rc =
    sh "%s map -k doitgen_u2 -a st -j 4 --report rep4.txt > rep_on4.out 2> /dev/null" plaidc
  in
  if rc <> 0 then fail "map --report -j 4 exited %d" rc;
  if read_file "rep_off.out" <> read_file "rep_on4.out" then
    fail "--report stdout differs at -j 4";
  let rep = read_file "rep.txt" in
  List.iter
    (fun needle ->
      if not (contains ~needle rep) then fail "ASCII report is missing %s" needle)
    [ "II search"; "phase totals"; "occupancy" ];
  (* a .json report is machine-readable with the documented top-level keys *)
  let rc = sh "%s map -k doitgen_u2 -a st --report rep.json > /dev/null 2> /dev/null" plaidc in
  if rc <> 0 then fail "map --report rep.json exited %d" rc;
  (match Plaid_obs.Json.of_string (String.trim (read_file "rep.json")) with
  | Error e -> fail "JSON report does not parse: %s" e
  | Ok doc ->
    List.iter
      (fun key ->
        if Plaid_obs.Json.member key doc = None then fail "JSON report is missing %S" key)
      [ "kernel"; "seed"; "fabric"; "mapped"; "attempts"; "phase_totals_ms" ])

(* --- design-space exploration ------------------------------------------ *)

(* one diagnostic line on stderr, clean stdout, exit 2 *)
let expect_dse_reject ~what args =
  let out = Printf.sprintf "dse_%s.out" what and err = Printf.sprintf "dse_%s.err" what in
  let rc = sh "%s dse %s > %s 2> %s" plaidc args out err in
  if rc <> 2 then fail "dse %s: expected exit 2, got %d" what rc;
  if String.trim (read_file out) <> "" then fail "dse %s: diagnostic leaked to stdout" what;
  match String.split_on_char '\n' (String.trim (read_file err)) with
  | [ line ] ->
    if not (String.length line >= 7 && String.sub line 0 7 = "plaidc:") then
      fail "dse %s: diagnostic is not prefixed 'plaidc:': %s" what line
  | lines -> fail "dse %s: expected one stderr line, got %d" what (List.length lines)

let () =
  expect_dse_reject ~what:"bad_space" "--space nosuch --quick";
  expect_dse_reject ~what:"bad_suite" "--space tiny --suite nosuch --quick";
  expect_dse_reject ~what:"bad_strategy" "--space tiny --strategy nosuch --quick";
  expect_dse_reject ~what:"bad_budget" "--space tiny --strategy random --budget 0 --quick";
  expect_dse_reject ~what:"conflict" "--space tiny --strategy exhaustive --budget 4 --quick";
  expect_dse_reject ~what:"j0" "--space tiny --quick -j 0";
  expect_dse_reject ~what:"missing_file" "--space @nonexistent.space --quick";
  let oc = open_out "bad.space" in
  output_string oc "family mesh\nrows four\n";
  close_out oc;
  expect_dse_reject ~what:"bad_file" "--space @bad.space --quick";
  (* a real tiny campaign: exit 0, frontier present, worker-count invariant *)
  let rc = sh "%s dse --space tiny --suite quick --quick -j 1 > dse1.out 2> dse1.err" plaidc in
  if rc <> 0 then fail "dse tiny campaign exited %d" rc;
  let out = read_file "dse1.out" in
  if not (contains ~needle:"frontier" out) then fail "dse report names no frontier";
  if not (contains ~needle:"plaid2x2" out) then fail "dse report is missing the plaid candidates";
  let _ = sh "%s dse --space tiny --suite quick --quick -j 4 > dse4.out 2> /dev/null" plaidc in
  if read_file "dse4.out" <> out then fail "dse report differs between -j 1 and -j 4";
  (* --json - emits machine-readable output with the documented keys *)
  let rc = sh "%s dse --space tiny --suite quick --quick --json - > dse.json 2> dsej.err" plaidc in
  if rc <> 0 then fail "dse --json - exited %d" rc;
  (match Plaid_obs.Json.of_string (String.trim (read_file "dse.json")) with
  | Error e -> fail "dse JSON report does not parse: %s" e
  | Ok doc ->
    List.iter
      (fun key ->
        if Plaid_obs.Json.member key doc = None then fail "dse JSON report is missing %S" key)
      [ "space"; "suite"; "strategy"; "seed"; "frontier"; "candidates" ])

(* --- uniform bad-name handling ----------------------------------------- *)

let () =
  let rc = sh "%s frobnicate > sub.out 2> sub.err" plaidc in
  if rc <> 2 then fail "unknown subcommand: expected exit 2, got %d" rc;
  let rc = sh "%s map -k gemm_u2 -a nosuch > arch.out 2> arch.err" plaidc in
  if rc <> 2 then fail "unknown architecture: expected exit 2, got %d" rc;
  if not (contains ~needle:"plaid" (read_file "arch.err")) then
    fail "unknown-architecture error does not list the valid choices";
  (* bad argument values: stderr diagnostic + exit 2, uniformly *)
  let rc = sh "%s fuzz --frobnicate > badflag.out 2> badflag.err" plaidc in
  if rc <> 2 then fail "unknown fuzz flag: expected exit 2, got %d" rc;
  let rc = sh "%s fuzz --trials=-3 > negt.out 2> negt.err" plaidc in
  if rc <> 2 then fail "negative fuzz trial count: expected exit 2, got %d" rc;
  if String.trim (read_file "negt.err") = "" then
    fail "negative fuzz trial count printed nothing on stderr";
  if String.trim (read_file "negt.out") <> "" then
    fail "negative-trials diagnostic leaked to stdout";
  let rc = sh "%s fuzz --trials 1 -j 0 > j0.out 2> j0.err" plaidc in
  if rc <> 2 then fail "fuzz -j 0: expected exit 2, got %d" rc;
  let rc = sh "%s faults -k gemm_u2 -a st --faults=-1 > negf.out 2> negf.err" plaidc in
  if rc <> 2 then fail "negative fault count: expected exit 2, got %d" rc;
  let rc = sh "%s exp table2 -j 0 > jexp.out 2> jexp.err" plaidc in
  if rc <> 2 then fail "exp -j 0: expected exit 2, got %d" rc;
  (* the telemetry flags take the same uniform path *)
  let rc = sh "%s serve --metrics-interval 0 < /dev/null > mi0.out 2> mi0.err" plaidc in
  if rc <> 2 then fail "serve --metrics-interval 0: expected exit 2, got %d" rc;
  if String.trim (read_file "mi0.err") = "" then
    fail "serve --metrics-interval 0 printed nothing on stderr";
  let rc = sh "%s serve --metrics-interval=-1 < /dev/null > min.out 2> min.err" plaidc in
  if rc <> 2 then fail "serve --metrics-interval -1: expected exit 2, got %d" rc;
  let rc = sh "%s serve --slow-ms=-5 < /dev/null > sm.out 2> sm.err" plaidc in
  if rc <> 2 then fail "serve --slow-ms -5: expected exit 2, got %d" rc;
  let rc =
    sh "%s map -k gemm_u2 -a st --report /nonexistent/dir/rep.txt > badrep.out 2> badrep.err"
      plaidc
  in
  if rc <> 2 then fail "map --report to an unwritable path: expected exit 2, got %d" rc;
  if String.trim (read_file "badrep.err") = "" then
    fail "unwritable --report path printed nothing on stderr"

let () =
  if !failures > 0 then exit 1;
  print_endline
    "cli gate: trace/metrics, fault campaigns, fuzz campaigns, serve/cache, dse, and error handling OK"
