(* Router hot-path overhaul tests: Pqueue retention/growth regressions,
   indexed-heap properties against a reference model, zero-length route
   semantics, the architecture route tables, and the differential gate
   that the fast (A* + memo) and baseline (plain Dijkstra) search cores
   return byte-identical results. *)

open Plaid_mapping
module Arch = Plaid_arch.Arch
module Mesh = Plaid_arch.Mesh
module Pqueue = Plaid_util.Pqueue
module Iheap = Plaid_util.Iheap

let check = Alcotest.check

let st4 = lazy (Mesh.build Mesh.spatio_temporal_4x4 ~name:"st4")

let fu_of pe =
  Mesh.fu_of_pe Mesh.spatio_temporal_4x4 ~row:(pe / 4) ~col:(pe mod 4)

(* ---------------------------------------------------------------- pqueue *)

(* Keep allocation out of the caller's frame so the only strong reference
   to the pushed value is the queue's backing array. *)
let[@inline never] push_tracked q w =
  let v = Bytes.make 64 'x' in
  Weak.set w 0 (Some v);
  Pqueue.push q 1.0 v

let collected w =
  Gc.full_major ();
  Gc.full_major ();
  Weak.get w 0 = None

let test_pqueue_pop_releases () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  push_tracked q w;
  (* a second live entry keeps the backing array allocated, so the test
     exercises the freed-tail-slot aliasing, not the array drop *)
  Pqueue.push q 2.0 Bytes.empty;
  ignore (Pqueue.pop q);
  check Alcotest.bool "popped value is collectable while queue lives" true (collected w);
  ignore (Pqueue.pop q)

let test_pqueue_emptied_releases () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  push_tracked q w;
  ignore (Pqueue.pop q);
  check Alcotest.bool "value of emptied queue is collectable" true (collected w)

let test_pqueue_clear_releases () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  push_tracked q w;
  Pqueue.clear q;
  check Alcotest.bool "cleared value is collectable" true (collected w)

(* push into a drained-but-previously-grown queue: the old growth scheme
   seeded the new array from data.(0) and crashed here *)
let test_pqueue_push_after_drain () =
  let q = Pqueue.create () in
  for i = 0 to 40 do
    Pqueue.push q (float_of_int (40 - i)) i
  done;
  while Pqueue.pop q <> None do
    ()
  done;
  Pqueue.clear q;
  for i = 0 to 40 do
    Pqueue.push q (float_of_int i) i
  done;
  check
    (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.int))
    "min pops first after drain-refill" (Some (0.0, 0)) (Pqueue.pop q)

(* ----------------------------------------------------------------- iheap *)

(* reference model: id -> (key, sec), minimum under (key, sec, id) *)
let model_min model =
  Hashtbl.fold
    (fun id (k, s) best ->
      match best with
      | Some (bk, bs, bid) when (bk, bs, bid) <= (k, s, id) -> best
      | _ -> Some (k, s, id))
    model None

let prop_iheap_matches_model =
  QCheck.Test.make ~name:"indexed heap agrees with a reference model" ~count:300
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map (fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) ops))
        Gen.(list_size (int_range 1 80) (triple (int_range 0 24) (int_range 0 40) (int_range 0 3))))
    (fun ops ->
      let h = Iheap.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (id, k, kind) ->
          let key = float_of_int (k / 4) and sec = float_of_int (k mod 4) in
          match kind with
          | 0 | 1 ->
            Iheap.insert h id ~key ~sec;
            Hashtbl.replace model id (key, sec);
            Iheap.contains h id && Iheap.key h id = key
          | 2 ->
            if Iheap.contains h id then begin
              Iheap.decrease h id ~key ~sec;
              (match Hashtbl.find_opt model id with
              | Some (k0, s0) when (key, sec) <= (k0, s0) ->
                Hashtbl.replace model id (key, sec)
              | _ -> ());
              true
            end
            else true
          | _ -> (
            let got = Iheap.pop h in
            match model_min model with
            | None -> got = -1
            | Some (_, _, id) ->
              Hashtbl.remove model id;
              got = id))
        ops
      && begin
        (* drain: pops must come out in strict (key, sec, id) order and
           empty the model *)
        let ok = ref true in
        let rec drain () =
          match Iheap.pop h with
          | -1 -> ok := Hashtbl.length model = 0 && !ok
          | id ->
            (match model_min model with
            | Some (_, _, mid) when mid = id -> Hashtbl.remove model id
            | _ -> ok := false);
            drain ()
        in
        drain ();
        !ok
      end)

let prop_iheap_clear_reuse =
  QCheck.Test.make ~name:"cleared heap reproduces a fresh heap's pops" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 40) (pair (int_range 0 30) (int_range 0 9))))
    (fun items ->
      let fill h =
        List.iter
          (fun (id, k) ->
            Iheap.insert h id ~key:(float_of_int k) ~sec:(float_of_int (id mod 3)))
          items
      in
      let drain h =
        let rec go acc = match Iheap.pop h with -1 -> List.rev acc | id -> go (id :: acc) in
        go []
      in
      let fresh = Iheap.create () in
      fill fresh;
      let reused = Iheap.create () in
      fill reused;
      (* leave some entries live, then clear mid-flight *)
      ignore (Iheap.pop reused);
      Iheap.clear reused;
      fill reused;
      drain fresh = drain reused)

(* ------------------------------------------------------ zero-length find *)

let test_route_length_zero () =
  let arch = Lazy.force st4 in
  let mrrg = Mrrg.create arch ~ii:2 in
  let fu = fu_of 5 in
  let each_core f =
    List.iter
      (fun forced ->
        Fun.protect
          ~finally:(fun () -> Route.set_baseline None)
          (fun () ->
            Route.set_baseline (Some forced);
            f (if forced then "baseline" else "fast")))
      [ true; false ]
  in
  each_core (fun core ->
      (match Route.find mrrg ~src_fu:fu ~src_node:0 ~t_src:1 ~dst_fu:fu ~length:0 ~mode:Route.Hard with
      | Some ([], 0.0) -> ()
      | Some _ -> Alcotest.failf "%s: zero-length same-FU route is not the empty path" core
      | None -> Alcotest.failf "%s: zero-length same-FU route must exist" core);
      check Alcotest.bool
        (core ^ ": zero-length cross-FU is unroutable")
        true
        (Route.find mrrg ~src_fu:fu ~src_node:0 ~t_src:1 ~dst_fu:(fu_of 6) ~length:0
           ~mode:Route.Hard
        = None);
      check Alcotest.bool
        (core ^ ": negative length is unroutable")
        true
        (Route.find mrrg ~src_fu:fu ~src_node:0 ~t_src:1 ~dst_fu:fu ~length:(-1)
           ~mode:Route.Hard
        = None))

(* ----------------------------------------------------------- route tables *)

(* the hop/latency lower bounds must be consistent with the link graph:
   0 on the diagonal, and within one link step of the successor's bound *)
let test_route_tables_consistent () =
  let arch = Lazy.force st4 in
  let rt = Arch.route_tables arch in
  let n = Arch.n_resources arch in
  check Alcotest.int "table covers every resource" n rt.Arch.rt_n;
  for dst = 0 to n - 1 do
    check Alcotest.int "self distance is zero" 0
      (Char.code (Bytes.get rt.Arch.rt_hop ((dst * n) + dst)))
  done;
  let dst = fu_of 0 in
  for res = 0 to n - 1 do
    let hop = Char.code (Bytes.get rt.Arch.rt_hop ((dst * n) + res)) in
    if hop <> 255 then
      List.iter
        (fun (succ, _lat) ->
          let hs = Char.code (Bytes.get rt.Arch.rt_hop ((dst * n) + succ)) in
          if hs <> 255 then
            check Alcotest.bool "triangle inequality over links" true (hop <= hs + 1))
        arch.Arch.out_links.(res)
  done;
  (* breaking a link rebuilds the cache from the pruned adjacency (only
     Broken_link faults prune links; FU/port faults mask MRRG cells, which
     the tables — admissible lower bounds — deliberately ignore).  Break
     the sole outgoing link of some resource: everything but itself
     becomes unreachable from there, while the original tables keep their
     entries. *)
  let sole =
    let rec scan res =
      if res >= n then Alcotest.fail "no single-exit resource in the mesh"
      else
        match arch.Arch.out_links.(res) with
        | [ (d, _) ] when d <> res -> (res, d)
        | _ -> scan (res + 1)
    in
    scan 0
  in
  let src, link_dst = sole in
  let faulted = Arch.set_faults arch [ Arch.Broken_link (src, link_dst) ] in
  let rt' = Arch.route_tables faulted in
  check Alcotest.int "dead-end source unreachable in faulted tables" 255
    (Char.code (Bytes.get rt'.Arch.rt_hop ((dst * n) + src)));
  check Alcotest.bool "original tables unaffected by set_faults" true
    (Char.code (Bytes.get rt.Arch.rt_hop ((dst * n) + src)) <> 255)

(* ------------------------------------------- fast vs baseline equivalence *)

(* The differential gate, in-process: identical queries against identical
   occupancy must produce structurally identical (path, cost) results from
   both search cores — including repeat queries (memo hits) and queries
   after occupancy mutations (memo invalidation). *)
let prop_cores_agree =
  QCheck.Test.make ~name:"fast and baseline search cores agree" ~count:60
    QCheck.(
      make
        ~print:(fun (a, b, l, ii, t, soft) ->
          Printf.sprintf "src=%d dst=%d len=%d ii=%d t_src=%d soft=%b" a b l ii t soft)
        Gen.(
          map
            (fun ((a, b, l), (ii, t, soft)) -> (a, b, l, ii, t, soft))
            (pair
               (triple (int_range 0 15) (int_range 0 15) (int_range 0 8))
               (triple (int_range 1 4) (int_range 0 3) bool))))
    (fun (src_pe, dst_pe, len, ii, t_src, soft) ->
      let arch = Lazy.force st4 in
      let history =
        Array.init (Arch.n_resources arch) (fun r ->
            Array.init ii (fun s -> float_of_int (((r * 7) + (s * 3)) mod 5) *. 0.3))
      in
      let mode =
        if soft then Route.Soft { present_factor = 0.7; history } else Route.Hard
      in
      let query mrrg =
        Route.find mrrg ~src_fu:(fu_of src_pe) ~src_node:3 ~t_src ~dst_fu:(fu_of dst_pe)
          ~length:len ~mode
      in
      (* pre-congest the fabric deterministically so soft pricing and
         sharing rules are exercised, not just empty-fabric shortest paths *)
      let congest mrrg =
        List.iter
          (fun (spe, dpe, l, node, t0) ->
            match
              Route.find mrrg ~src_fu:(fu_of spe) ~src_node:node ~t_src:t0
                ~dst_fu:(fu_of dpe) ~length:l ~mode:Route.Hard
            with
            | Some (p, _) -> Route.occupy_path mrrg ~src_node:node ~t_src:t0 p
            | None -> ())
          [ (0, 5, 2, 11, 0); (5, 10, 3, 12, 1); (3, 0, 4, 13, 0); (12, 15, 2, 14, 2) ]
      in
      let run forced =
        Fun.protect
          ~finally:(fun () -> Route.set_baseline None)
          (fun () ->
            Route.set_baseline (Some forced);
            let mrrg = Mrrg.create arch ~ii in
            congest mrrg;
            let r1 = query mrrg in
            let r2 = query mrrg in
            (* mutate occupancy, then query again: the fast core's memo
               must notice the footprint change *)
            let r3 =
              match r1 with
              | Some (p, _) when p <> [] ->
                Route.occupy_path mrrg ~src_node:3 ~t_src p;
                let r = query mrrg in
                Route.release_path mrrg ~src_node:3 ~t_src p;
                r
              | _ -> query mrrg
            in
            (r1, r2, r3))
      in
      run true = run false)

(* ----------------------------------------------------------------- suite *)

let suites =
  [ ( "router",
      [ Alcotest.test_case "pqueue pop releases popped value" `Quick test_pqueue_pop_releases;
        Alcotest.test_case "pqueue emptied queue releases values" `Quick
          test_pqueue_emptied_releases;
        Alcotest.test_case "pqueue clear releases values" `Quick test_pqueue_clear_releases;
        Alcotest.test_case "pqueue push after drain" `Quick test_pqueue_push_after_drain;
        Alcotest.test_case "zero-length routes" `Quick test_route_length_zero;
        Alcotest.test_case "route tables consistent with links" `Quick
          test_route_tables_consistent;
        Test_qc.to_alcotest prop_iheap_matches_model;
        Test_qc.to_alcotest prop_iheap_clear_reuse;
        Test_qc.to_alcotest prop_cores_agree ] ) ]
