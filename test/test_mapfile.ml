(* Tests for mapping object files: save/load round trip, validation on
   load, tamper rejection, and execution of a reloaded mapping. *)

open Plaid_mapping

let check = Alcotest.check

let st4 = lazy (Plaid_arch.Mesh.build Plaid_arch.Mesh.spatio_temporal_4x4 ~name:"st_4x4")

let resolve name = if name = "st_4x4" then Some (Lazy.force st4) else None

let mapped =
  lazy
    (let e = Plaid_workloads.Suite.find "gemm_u2" in
     match
       (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4)
          ~dfg:(Plaid_workloads.Suite.dfg e) ~seed:5 ())
         .Driver.mapping
     with
     | Some m -> m
     | None -> Alcotest.fail "gemm_u2 should map")

let test_roundtrip () =
  let m = Lazy.force mapped in
  match Mapfile.of_string ~resolve (Mapfile.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    check Alcotest.int "ii" m.Mapping.ii m'.Mapping.ii;
    check Alcotest.(array int) "times" m.Mapping.times m'.Mapping.times;
    check Alcotest.(array int) "place" m.Mapping.place m'.Mapping.place;
    check Alcotest.int "routes" (List.length m.Mapping.routes) (List.length m'.Mapping.routes)

let test_loaded_mapping_executes () =
  let m = Lazy.force mapped in
  match Mapfile.of_string ~resolve (Mapfile.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' -> (
    let e = Plaid_workloads.Suite.find "gemm_u2" in
    let kernel =
      Plaid_ir.Unroll.apply e.Plaid_workloads.Suite.base e.Plaid_workloads.Suite.unroll
    in
    let spm = Plaid_sim.Spm.of_kernel kernel ~params:(Plaid_workloads.Suite.params e) ~seed:4 in
    match Plaid_sim.Cycle_sim.verify m' spm with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg)

let test_unknown_arch_rejected () =
  let m = Lazy.force mapped in
  match Mapfile.of_string ~resolve:(fun _ -> None) (Mapfile.to_string m) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-architecture error"

let test_tampered_placement_rejected () =
  let m = Lazy.force mapped in
  let text = Mapfile.to_string m in
  (* move node 0 onto node 1's FU: double-booking must fail validation *)
  let fu1 =
    String.split_on_char '\n' text
    |> List.find_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "place"; "1"; fu ] -> Some fu
           | _ -> None)
  in
  let fu1 = Option.get fu1 in
  let tampered =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.split_on_char ' ' l with
           | [ "place"; "0"; _ ] -> Printf.sprintf "place 0 %s" fu1
           | _ -> l)
    |> String.concat "\n"
  in
  match Mapfile.of_string ~resolve tampered with
  | Error _ -> ()
  | Ok m' ->
    (* only acceptable if nodes 0 and 1 occupy different slots *)
    let slot v = m'.Mapping.times.(v) mod m'.Mapping.ii in
    if slot 0 = slot 1 then Alcotest.fail "tampered placement accepted"

let test_version_guard () =
  match Mapfile.of_string ~resolve "bogus-file" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected version rejection"

let test_label_encoding () =
  (* labels with spaces/percent survive the round trip *)
  let open Plaid_ir in
  let b = Dfg.builder ~trip:2 "odd name" in
  let ld =
    Dfg.add_node b ~access:{ array = "my array"; offset = 0; stride = 1 } ~label:"load 100%"
      Op.Load
  in
  let st =
    Dfg.add_node b ~access:{ array = "out"; offset = 0; stride = 1 } Op.Store
  in
  Dfg.add_edge b ~src:ld ~dst:st ~operand:0 ();
  let g = Dfg.finish b in
  match
    (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4) ~dfg:g ~seed:2 ())
      .Driver.mapping
  with
  | None -> Alcotest.fail "mapping failed"
  | Some m -> (
    match Mapfile.of_string ~resolve (Mapfile.to_string m) with
    | Error e -> Alcotest.fail e
    | Ok m' ->
      check Alcotest.string "label" "load 100%" (Dfg.node m'.Mapping.dfg 0).label;
      check Alcotest.string "dfg name" "odd name" m'.Mapping.dfg.Dfg.name)

(* ------------------------------------------ properties on random mappings *)

(* The round trip must hold for arbitrary programs, not just the fixed
   examples above: map each generated family and require print . parse .
   print to be the identity on the serialized bytes. *)
let prop_roundtrip_random_mappings =
  QCheck.Test.make ~name:"mapfile round-trips random mappings" ~count:6
    QCheck.(make ~print:string_of_int Gen.(int_range 1 100_000))
    (fun seed ->
      let spec = { Plaid_ir.Generate.seed; size = 6; trip = 4 } in
      List.for_all
        (fun ((name, g) : string * Plaid_ir.Dfg.t) ->
          match
            (Driver.map ~algo:(Driver.Sa Anneal.quick) ~arch:(Lazy.force st4) ~dfg:g ~seed ())
              .Driver.mapping
          with
          | None -> true (* nothing to serialize; feasibility is not under test *)
          | Some m -> (
            let text = Mapfile.to_string m in
            match Mapfile.of_string ~resolve text with
            | Error e -> QCheck.Test.fail_reportf "%s: %s" name e
            | Ok m' -> Mapfile.to_string m' = text))
        (Plaid_ir.Generate.fuzz_families spec))

(* the bare DFG section (shared with the fuzz corpus format) is invertible
   on every generator family, mapped or not *)
let prop_dfg_lines_roundtrip =
  QCheck.Test.make ~name:"dfg line serialization is invertible" ~count:12
    QCheck.(make ~print:string_of_int Gen.(int_range 1 100_000))
    (fun seed ->
      let spec = { Plaid_ir.Generate.seed; size = 9; trip = 5 } in
      List.for_all
        (fun ((name, g) : string * Plaid_ir.Dfg.t) ->
          let lines = Mapfile.dfg_to_lines g in
          match Mapfile.dfg_of_lines lines with
          | Error e -> QCheck.Test.fail_reportf "%s: %s" name e
          | Ok g' -> Mapfile.dfg_to_lines g' = lines)
        (Plaid_ir.Generate.fuzz_families spec))

let suites =
  [
    ( "mapfile",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "loaded mapping executes" `Quick test_loaded_mapping_executes;
        Alcotest.test_case "unknown arch rejected" `Quick test_unknown_arch_rejected;
        Alcotest.test_case "tampering rejected" `Quick test_tampered_placement_rejected;
        Alcotest.test_case "version guard" `Quick test_version_guard;
        Alcotest.test_case "label encoding" `Quick test_label_encoding;
        Test_qc.to_alcotest prop_roundtrip_random_mappings;
        Test_qc.to_alcotest prop_dfg_lines_roundtrip;
      ] );
  ]
