(* Tests for plaid_model and plaid_workloads: area/power invariants,
   calibration anchors (paper's published breakdowns), energy accounting,
   and suite integrity. *)

open Plaid_workloads

let check = Alcotest.check

let st4 = lazy (Plaid_arch.Mesh.build Plaid_arch.Mesh.spatio_temporal_4x4 ~name:"st4")

let plaid2 = lazy ((Plaid_core.Pcu.build ~rows:2 ~cols:2 ~name:"p2" ()).Plaid_core.Pcu.arch)

(* ------------------------------------------------------------------ area *)

let test_area_positive_categories () =
  List.iter
    (fun arch ->
      let r = Plaid_model.Area.fabric arch in
      List.iter
        (fun c ->
          check Alcotest.bool c true (Plaid_model.Report.get r c > 0.0))
        [ "compute"; "compute_config"; "comm"; "comm_config"; "regs" ])
    [ Lazy.force st4; Lazy.force plaid2 ]

let test_area_plaid_near_paper () =
  let total = Plaid_model.Area.fabric_total (Lazy.force plaid2) in
  (* paper: 33,366 um^2; allow 15% modelling slack *)
  if total < 28000.0 || total > 40000.0 then
    Alcotest.failf "plaid fabric area %.0f out of calibration band" total

let test_area_plaid_saves_vs_st () =
  let p = Plaid_model.Area.fabric_total (Lazy.force plaid2) in
  let s = Plaid_model.Area.fabric_total (Lazy.force st4) in
  let saving = 1.0 -. (p /. s) in
  (* paper: 46% *)
  if saving < 0.30 || saving > 0.60 then
    Alcotest.failf "area saving %.2f out of expected band" saving

let test_area_scales_with_fabric () =
  let p2 = Plaid_model.Area.fabric_total (Lazy.force plaid2) in
  let p3 =
    Plaid_model.Area.fabric_total (Plaid_core.Pcu.build ~rows:3 ~cols:3 ~name:"p3" ()).Plaid_core.Pcu.arch
  in
  check Alcotest.bool "3x3 bigger" true (p3 > 1.8 *. p2)

let test_spm_area () =
  check (Alcotest.float 1.0) "16KB (paper: 30000)" 30000.0 (Plaid_model.Area.spm ~kb:16)

(* ----------------------------------------------------------------- power *)

let mapped_pair =
  lazy
    (let e = Suite.find "gemm_u2" in
     let dfg = Suite.dfg e in
     let st =
       (Plaid_mapping.Driver.map
          ~algo:(Plaid_mapping.Driver.Sa Plaid_mapping.Anneal.quick)
          ~arch:(Lazy.force st4) ~dfg ~seed:3 ())
         .Plaid_mapping.Driver.mapping
     in
     let plaid =
       (Plaid_core.Hier_mapper.map ~params:Plaid_core.Hier_mapper.quick
          ~plaid:(Plaid_core.Pcu.build ~rows:2 ~cols:2 ~name:"p2" ())
          ~seed:3 dfg)
         .Plaid_core.Hier_mapper.mapping
     in
     match (st, plaid) with
     | Some a, Some b -> (a, b)
     | _ -> Alcotest.fail "calibration mappings failed")

let test_power_positive () =
  let st, plaid = Lazy.force mapped_pair in
  check Alcotest.bool "st power" true (Plaid_model.Power.fabric_total st > 0.0);
  check Alcotest.bool "plaid power" true (Plaid_model.Power.fabric_total plaid > 0.0)

let test_power_config_dominates_st () =
  (* Figure 2a: configuration is the largest power block of the ST baseline *)
  let st, _ = Lazy.force mapped_pair in
  let r = Plaid_model.Power.fabric st in
  let cfg =
    Plaid_model.Report.share r "compute_config" +. Plaid_model.Report.share r "comm_config"
  in
  if cfg < 0.35 || cfg > 0.70 then Alcotest.failf "ST config share %.2f out of band" cfg

let test_power_plaid_lower_comm () =
  let st, plaid = Lazy.force mapped_pair in
  let sc = Plaid_model.Report.get (Plaid_model.Power.fabric st) "comm_config" in
  let pc = Plaid_model.Report.get (Plaid_model.Power.fabric plaid) "comm_config" in
  check Alcotest.bool "plaid comm config below ST" true (pc < sc)

let test_spatial_clock_gating () =
  (* identical mesh, clock-gated config: dynamic config power gone *)
  let spatial = Plaid_spatial.Spatial.arch () in
  let dummy_mapping arch =
    (* leakage-only question: use idle_fabric *)
    Plaid_model.Power.idle_fabric arch
  in
  ignore dummy_mapping;
  check Alcotest.bool "clock gated flag" true spatial.Plaid_arch.Arch.config.clock_gated

let test_energy_scales_with_cycles () =
  let st, _ = Lazy.force mapped_pair in
  let e1 = Plaid_model.Tech.energy_pj ~power_uw:100.0 ~cycles:100 in
  let e2 = Plaid_model.Tech.energy_pj ~power_uw:100.0 ~cycles:200 in
  check (Alcotest.float 1e-6) "linear" (2.0 *. e1) e2;
  check Alcotest.bool "fabric energy positive" true (Plaid_model.Energy.fabric_energy st > 0.0)

(* ---------------------------------------------------------- JSON export *)

(* The machine-readable export must agree with the ASCII model to the last
   bit: parse the serialized JSON back and compare every category against a
   direct model call, then pin the known fabric's totals. *)
let json_num path j =
  let rec go j = function
    | [] -> Plaid_obs.Json.num j
    | k :: rest -> Option.bind (Plaid_obs.Json.member k j) (fun v -> go v rest)
  in
  match go j path with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON field %s" (String.concat "." path)

let test_export_area_matches_model () =
  let arch = Lazy.force plaid2 in
  let s = Plaid_obs.Json.to_string (Plaid_model.Export.area_json arch ~spm_kb:16) in
  match Plaid_obs.Json.of_string s with
  | Error e -> Alcotest.fail ("area JSON does not parse: " ^ e)
  | Ok j ->
    let r = Plaid_model.Area.fabric arch in
    List.iter
      (fun c ->
        check (Alcotest.float 1e-9) c (Plaid_model.Report.get r c)
          (json_num [ "fabric"; "categories"; c ] j))
      [ "compute"; "compute_config"; "comm"; "comm_config"; "regs" ];
    check (Alcotest.float 1e-9) "fabric total" (Plaid_model.Report.total r)
      (json_num [ "fabric"; "total" ] j);
    check (Alcotest.float 1e-9) "spm" (Plaid_model.Area.spm ~kb:16)
      (json_num [ "spm_um2" ] j);
    check (Alcotest.float 1e-9) "system" (Plaid_model.Area.system arch ~spm_kb:16)
      (json_num [ "system_um2" ] j)

let test_export_pins_plaid_fabric () =
  (* the calibration anchor, now machine-readable: the 2x2 Plaid fabric's
     exported area sits in the paper's 33,366 um^2 band and the category
     totals add up *)
  let j = Plaid_model.Export.area_json (Lazy.force plaid2) ~spm_kb:16 in
  let total = json_num [ "fabric"; "total" ] j in
  if total < 28000.0 || total > 40000.0 then
    Alcotest.failf "exported plaid fabric area %.0f out of calibration band" total;
  let sum =
    List.fold_left
      (fun acc c -> acc +. json_num [ "fabric"; "categories"; c ] j)
      0.0
      [ "compute"; "compute_config"; "comm"; "comm_config"; "regs" ]
  in
  check (Alcotest.float 1e-6) "categories sum to total" total sum;
  check (Alcotest.float 1e-6) "system = fabric + spm"
    (total +. json_num [ "spm_um2" ] j)
    (json_num [ "system_um2" ] j)

let test_export_power_energy () =
  let st, _ = Lazy.force mapped_pair in
  let jp = Plaid_model.Export.power_json st ~spm_kb:16 in
  check (Alcotest.float 1e-9) "power total"
    (Plaid_model.Power.fabric_total st)
    (json_num [ "fabric"; "total" ] jp);
  check (Alcotest.float 1e-9) "system power"
    (Plaid_model.Power.system st ~spm_kb:16)
    (json_num [ "system_uw" ] jp);
  let je = Plaid_model.Export.energy_json st ~spm_kb:16 ~cycles:1000 in
  check (Alcotest.float 1e-9) "fabric energy"
    (Plaid_model.Tech.energy_pj ~power_uw:(Plaid_model.Power.fabric_total st) ~cycles:1000)
    (json_num [ "fabric_pj" ] je);
  check (Alcotest.float 1e-9) "cycles" 1000.0 (json_num [ "cycles" ] je)

(* ------------------------------------------------------------- workloads *)

let test_suite_has_30_dfgs () = check Alcotest.int "30 DFGs" 30 (List.length Suite.table2)

let test_suite_domains_balanced () =
  let count d = List.length (List.filter (fun e -> e.Suite.domain = d) Suite.table2) in
  check Alcotest.int "linear algebra" 12 (count Suite.Linear_algebra);
  check Alcotest.int "machine learning" 5 (count Suite.Machine_learning);
  check Alcotest.int "image" 13 (count Suite.Image)

let test_suite_all_lower () =
  List.iter
    (fun e ->
      let g = Suite.dfg e in
      check Alcotest.bool (Suite.name e) true (Plaid_ir.Dfg.n_nodes g > 0))
    Suite.table2

let test_suite_kernels_interpret () =
  (* every kernel runs under the DSL interpreter without faults *)
  List.iter
    (fun e ->
      let k = Plaid_ir.Unroll.apply e.Suite.base e.Suite.unroll in
      let mem = Plaid_ir.Kernel.memory_for k ~seed:3 in
      Plaid_ir.Kernel.interpret k ~params:(Suite.params e) mem)
    Suite.table2

let test_seidel_has_recurrence () =
  let g = Suite.dfg (Suite.find "seidel") in
  check Alcotest.bool "rec mii > 1" true (Plaid_ir.Analysis.rec_mii g > 1)

let test_jacobi_no_recurrence () =
  let g = Suite.dfg (Suite.find "jacobi") in
  check Alcotest.int "rec mii 1" 1 (Plaid_ir.Analysis.rec_mii g)

let test_dnn_apps_shape () =
  let lens = List.map (fun (a : Dnn.app) -> List.length a.layers) Dnn.apps in
  check Alcotest.(list int) "10/13/16 layers" [ 10; 13; 16 ] lens

let suites =
  [
    ( "area",
      [
        Alcotest.test_case "positive categories" `Quick test_area_positive_categories;
        Alcotest.test_case "plaid near paper" `Quick test_area_plaid_near_paper;
        Alcotest.test_case "plaid saves vs st" `Quick test_area_plaid_saves_vs_st;
        Alcotest.test_case "scales with fabric" `Quick test_area_scales_with_fabric;
        Alcotest.test_case "spm area" `Quick test_spm_area;
      ] );
    ( "power",
      [
        Alcotest.test_case "positive" `Quick test_power_positive;
        Alcotest.test_case "config dominates ST" `Quick test_power_config_dominates_st;
        Alcotest.test_case "plaid lower comm config" `Quick test_power_plaid_lower_comm;
        Alcotest.test_case "spatial clock gating" `Quick test_spatial_clock_gating;
        Alcotest.test_case "energy linear in cycles" `Quick test_energy_scales_with_cycles;
      ] );
    ( "model-export",
      [
        Alcotest.test_case "area JSON matches the model" `Quick test_export_area_matches_model;
        Alcotest.test_case "pins the plaid fabric numbers" `Quick test_export_pins_plaid_fabric;
        Alcotest.test_case "power and energy JSON" `Quick test_export_power_energy;
      ] );
    ( "workloads",
      [
        Alcotest.test_case "30 DFGs" `Quick test_suite_has_30_dfgs;
        Alcotest.test_case "domain split" `Quick test_suite_domains_balanced;
        Alcotest.test_case "all lower" `Quick test_suite_all_lower;
        Alcotest.test_case "all interpret" `Quick test_suite_kernels_interpret;
        Alcotest.test_case "seidel recurrence" `Quick test_seidel_has_recurrence;
        Alcotest.test_case "jacobi no recurrence" `Quick test_jacobi_no_recurrence;
        Alcotest.test_case "dnn apps" `Quick test_dnn_apps_shape;
      ] );
  ]
